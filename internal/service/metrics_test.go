package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

const metricsSrc = ":- table path/2.\nedge(a,b). edge(b,c).\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\nmain(X) :- path(a, X).\n"

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)

// parseProm parses Prometheus text format 0.0.4 strictly enough to fail
// on malformed lines: every non-comment line must be name{labels} value,
// every sample's name must have seen a HELP and TYPE header first.
func parseProm(t *testing.T, body string) []promSample {
	t.Helper()
	var samples []promSample
	described := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			described[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = true
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("bad TYPE %q", line)
			}
			continue
		}
		mm := promLine.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		s := promSample{name: mm[1], labels: map[string]string{}}
		if mm[2] != "" {
			for _, pair := range splitLabels(mm[2]) {
				eq := strings.Index(pair, "=")
				val := pair[eq+1:]
				if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
					t.Fatalf("unquoted label value in %q", line)
				}
				s.labels[pair[:eq]] = val[1 : len(val)-1]
			}
		}
		v, err := strconv.ParseFloat(mm[3], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		s.value = v
		// A histogram's _bucket/_sum/_count samples belong to the base
		// family name for HELP/TYPE purposes.
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(s.name, suf); b != s.name && described[b] {
				base = b
			}
		}
		if !described[base] || !typed[base] {
			t.Fatalf("sample %q before its HELP/TYPE headers", line)
		}
		samples = append(samples, s)
	}
	return samples
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func findSample(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return promSample{}, false
}

// TestMetricsExposition drives one groundness request through the HTTP
// API and checks /metrics parses as Prometheus text and reflects it.
func TestMetricsExposition(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8, Version: "v-test"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"source": %q}`, metricsSrc)
	resp, err := http.Post(srv.URL+"/v1/analyze/groundness", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := parseProm(t, string(raw))

	if got, ok := findSample(samples, "xlpd_requests_total", nil); !ok || got.value != 1 {
		t.Fatalf("xlpd_requests_total = %+v (found %v), want 1", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_executed_total", nil); !ok || got.value != 1 {
		t.Fatalf("xlpd_executed_total = %+v (found %v), want 1", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_request_duration_seconds_count",
		map[string]string{"kind": "groundness"}); !ok || got.value != 1 {
		t.Fatalf("groundness latency count = %+v (found %v), want 1", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_http_request_duration_seconds_count",
		map[string]string{"route": "POST /v1/analyze/{kind}"}); !ok || got.value != 1 {
		t.Fatalf("route latency count = %+v (found %v), want 1", got, ok)
	}
	// The groundness run evaluated tabled subgoals; the engine aggregates
	// must reflect it.
	if got, ok := findSample(samples, "xlpd_engine_subgoals_total", nil); !ok || got.value <= 0 {
		t.Fatalf("xlpd_engine_subgoals_total = %+v (found %v), want > 0", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_engine_resolutions_total", nil); !ok || got.value <= 0 {
		t.Fatalf("xlpd_engine_resolutions_total = %+v (found %v), want > 0", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_build_info",
		map[string]string{"version": "v-test"}); !ok || got.value != 1 {
		t.Fatalf("xlpd_build_info = %+v (found %v)", got, ok)
	}
	// Cumulative histogram invariant: every bucket count <= +Inf count.
	inf, ok := findSample(samples, "xlpd_request_duration_seconds_bucket",
		map[string]string{"kind": "groundness", "le": "+Inf"})
	if !ok || inf.value != 1 {
		t.Fatalf("+Inf bucket = %+v (found %v), want 1", inf, ok)
	}
}

// TestMetricsCompileAndUptime drives a closure-mode request (which
// compiles predicates) and an explain request (which records
// provenance), then checks the new counters and gauges survive the
// strict exposition parser with the expected values.
func TestMetricsCompileAndUptime(t *testing.T) {
	s := newTestService(t, Config{Workers: 2, QueueSize: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"source": %q, "options": {"mode": "closure"}}`, metricsSrc)
	resp, err := http.Post(srv.URL+"/v1/analyze/groundness", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("closure analyze status %d", resp.StatusCode)
	}
	eresp, err := http.Post(srv.URL+"/v1/explain", "application/json",
		strings.NewReader(fmt.Sprintf(`{"source": %q, "options": {"pred": "path/2"}}`, metricsSrc)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, eresp.Body) //nolint:errcheck
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", eresp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	samples := parseProm(t, string(raw))

	if got, ok := findSample(samples, "xlpd_preds_compiled_total", nil); !ok || got.value <= 0 {
		t.Fatalf("xlpd_preds_compiled_total = %+v (found %v), want > 0", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_compile_seconds_total", nil); !ok || got.value <= 0 {
		t.Fatalf("xlpd_compile_seconds_total = %+v (found %v), want > 0", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_engine_provenance_bytes_total", nil); !ok || got.value <= 0 {
		t.Fatalf("xlpd_engine_provenance_bytes_total = %+v (found %v), want > 0", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_uptime_seconds", nil); !ok || got.value <= 0 {
		t.Fatalf("xlpd_uptime_seconds = %+v (found %v), want > 0", got, ok)
	}
	if got, ok := findSample(samples, "xlpd_in_flight_peak", nil); !ok || got.value < 1 {
		t.Fatalf("xlpd_in_flight_peak = %+v (found %v), want >= 1", got, ok)
	}
	if _, ok := findSample(samples, "xlpd_queue_depth_peak", nil); !ok {
		t.Fatal("xlpd_queue_depth_peak missing")
	}
	if got, ok := findSample(samples, "xlpd_http_request_duration_seconds_count",
		map[string]string{"route": "POST /v1/explain"}); !ok || got.value != 1 {
		t.Fatalf("explain route latency count = %+v (found %v), want 1", got, ok)
	}
}

// TestMetricsStatsEndpointBuildInfo checks /v1/stats carries the engine
// aggregates and build info.
func TestMetricsStatsEndpointBuildInfo(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 8, Version: "v-test"})
	if _, err := s.Do(context.Background(), &Request{Kind: KindGroundness, Source: metricsSrc}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{`"subgoals"`, `"resolutions"`, `"version": "v-test"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/v1/stats missing %s:\n%s", want, body)
		}
	}
	if st := s.Stats(); st.Engine.Subgoals <= 0 || st.Engine.Answers <= 0 {
		t.Fatalf("engine aggregates not accumulated: %+v", st.Engine)
	}
}

// TestMetricsConcurrent hammers analyze requests and /metrics scrapes
// concurrently; run under -race to check the exposition path is safe
// against the worker pool's counter updates.
func TestMetricsConcurrent(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueSize: 256, CacheSize: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// Vary the source so runs miss the cache and execute.
				src := metricsSrc + fmt.Sprintf("extra%d_%d(x).\n", g, i)
				if _, err := s.Do(context.Background(), &Request{Kind: KindGroundness, Source: src}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Requests != 40 || st.Engine.Subgoals <= 0 {
		t.Fatalf("counters after hammer: %+v", st)
	}
}
