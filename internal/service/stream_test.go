package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xlp/internal/testutil"
)

// streamQueryBody builds a query whose answer set expands to n stream
// items (n ground solutions).
func streamQueryBody(n int, stream bool) apiRequest {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "d(%d).\n", i)
	}
	return apiRequest{Source: sb.String(), Options: Options{Goal: "d(X)", Stream: stream}}
}

func postStream(t *testing.T, url string, body apiRequest, accept string) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestStreamNDJSON checks the JSON-lines framing end to end: header
// with an item count, one item object per solution, done trailer — and
// that the streamed items equal the buffered response's.
func TestStreamNDJSON(t *testing.T) {
	s, srv := newTestServer(t)
	const n = 16

	resp := postStream(t, srv.URL+"/v1/query", streamQueryBody(n, true), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != n+2 {
		t.Fatalf("got %d lines, want header + %d items + trailer", len(lines), n)
	}

	var header streamHeader
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header: %v", err)
	}
	if header.Kind != KindQuery || header.Items != n {
		t.Errorf("header %+v, want kind=query items=%d", header, n)
	}
	seen := map[string]bool{}
	for _, ln := range lines[1 : n+1] {
		var item streamItem
		if err := json.Unmarshal([]byte(ln), &item); err != nil {
			t.Fatalf("item %q: %v", ln, err)
		}
		if item.Solution == nil {
			t.Fatalf("item without solution: %q", ln)
		}
		seen[*item.Solution] = true
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[n+1]), &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if !trailer.Done || trailer.Items != n {
		t.Errorf("trailer %+v, want done=true items=%d", trailer, n)
	}

	// The streamed item set must match the buffered transport's answer
	// set for the identical request (served from cache — same key).
	hr, body := post(t, srv.URL+"/v1/query", streamQueryBody(n, false))
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("buffered repeat: status %d: %s", hr.StatusCode, body)
	}
	var buffered Response
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if !buffered.Cached {
		t.Error("streamed and buffered requests did not share a cache entry")
	}
	if len(buffered.Solutions) != n {
		t.Fatalf("buffered solutions %d, want %d", len(buffered.Solutions), n)
	}
	for _, sol := range buffered.Solutions {
		if !seen[sol] {
			t.Errorf("solution %q missing from the stream", sol)
		}
	}
	if st := s.Stats(); st.Streams != 1 {
		t.Errorf("streams counter %d, want 1", st.Streams)
	}
}

// TestStreamSSE checks the Accept-negotiated server-sent-events framing:
// event names header/item/done, data lines carrying the same JSON
// objects as the NDJSON transport.
func TestStreamSSE(t *testing.T) {
	_, srv := newTestServer(t)
	const n = 4

	resp := postStream(t, srv.URL+"/v1/query", streamQueryBody(n, false), "text/event-stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var events []string
	var payloads []string
	for _, ln := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(ln, "event: "):
			events = append(events, strings.TrimPrefix(ln, "event: "))
		case strings.HasPrefix(ln, "data: "):
			payloads = append(payloads, strings.TrimPrefix(ln, "data: "))
		case ln != "":
			t.Fatalf("unframed SSE line %q", ln)
		}
	}
	want := append(append([]string{"header"}, repeat("item", n)...), "done")
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("event sequence %v, want %v", events, want)
	}
	if len(payloads) != len(events) {
		t.Fatalf("%d data lines for %d events", len(payloads), len(events))
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(payloads[len(payloads)-1]), &trailer); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if !trailer.Done {
		t.Error("SSE stream missing done trailer")
	}
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// TestStreamAcceptNDJSON: the Accept header alone (no options.stream)
// selects JSON-lines delivery.
func TestStreamAcceptNDJSON(t *testing.T) {
	_, srv := newTestServer(t)
	resp := postStream(t, srv.URL+"/v1/query", streamQueryBody(2, false), "application/x-ndjson")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	if got := len(strings.Split(strings.TrimSpace(string(data)), "\n")); got != 4 {
		t.Errorf("%d lines, want 4 (header + 2 items + trailer)", got)
	}
}

// failingWriter fails every Write past failAt, standing in for a client
// whose connection dropped mid-stream.
type failingWriter struct {
	header http.Header
	writes int
	failAt int
	status int
}

func (w *failingWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAt {
		return 0, errors.New("broken pipe")
	}
	return len(p), nil
}

func (w *failingWriter) WriteHeader(code int) { w.status = code }

// TestStreamWriteErrorStops: a mid-stream write failure stops the
// stream immediately — no further encode work for a client that is
// gone.
func TestStreamWriteErrorStops(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	resp, err := s.Do(context.Background(), &Request{
		Kind: KindQuery, Source: streamQueryBody(8, false).Source, Options: Options{Goal: "d(X)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &failingWriter{failAt: 3} // header + two items, then the pipe breaks
	s.streamResponse(w, streamNDJSON, resp)
	if w.status != http.StatusOK {
		t.Errorf("status %d, want 200 before the failure", w.status)
	}
	if w.writes != 4 {
		t.Errorf("%d writes, want exactly 4 (3 delivered + 1 failed, then stop)", w.writes)
	}
}

// TestStreamClientDisconnect: a client that vanishes mid-stream leaves
// no goroutines behind, and the server keeps serving.
func TestStreamClientDisconnect(t *testing.T) {
	before := testutil.Goroutines()
	s := New(Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())

	buf, err := json.Marshal(streamQueryBody(256, true))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/query", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the header line, then hang up mid-stream.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("header line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The server is still healthy: a fresh buffered request succeeds.
	hr, body := post(t, srv.URL+"/v1/query", apiRequest{Source: "a(1).", Options: Options{Goal: "a(X)"}})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: status %d: %s", hr.StatusCode, body)
	}

	srv.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.AssertNoLeaks(t, before)
}

// TestStreamShutdownInFlight: shutting the server down while a stream
// is in flight neither deadlocks nor leaks. The graceful path drains
// the stream to its done trailer; the abrupt path (connections torn
// down) truncates it — both must leave a clean goroutine profile.
func TestStreamShutdownInFlight(t *testing.T) {
	before := testutil.Goroutines()
	s := New(Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())

	buf, err := json.Marshal(streamQueryBody(256, true))
	if err != nil {
		t.Fatal(err)
	}

	// Graceful: reader drains while Shutdown runs concurrently.
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("draining stream during shutdown: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || !trailer.Done {
		t.Errorf("in-flight stream not drained to its trailer during shutdown (err %v)", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Abrupt: a second stream's connection is torn down underneath it.
	// (The service is draining, so serve from a fresh one.)
	s2 := New(Config{Workers: 2})
	srv2 := httptest.NewServer(s2.Handler())
	resp2, err := http.Post(srv2.URL+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(resp2.Body).ReadString('\n'); err != nil {
		t.Fatalf("header line: %v", err)
	}
	srv2.CloseClientConnections()
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck // truncation is the point
	resp2.Body.Close()

	srv2.Close()
	srv.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.AssertNoLeaks(t, before)
}
