package service

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"xlp/internal/obs"
)

// The /debug/tables endpoint exposes the engine tables of executing
// requests live: each tabled execution installs a concurrency-safe
// tracer (tablesWatch) on its engine machine, and the handler snapshots
// the per-predicate counters mid-run — subgoals entered, answers
// recorded, SCC completions, trie nodes — without touching the
// (non-goroutine-safe) machine itself. Finished runs stay visible in a
// small ring so a scrape just after completion still sees them.

// debugRecentCap bounds the finished-run ring.
const debugRecentCap = 16

// watchPred is one predicate's live counters inside a watch.
type watchPred struct {
	subgoals, answers, completions int
	tableNodes, tableBytes         int
}

// tablesWatch observes one executing request's engine. It implements
// obs.EngineTracer; Emit is called from the worker goroutine running
// the engine while /debug/tables snapshots concurrently, so the
// counters are guarded by a mutex (scrapes are rare; the uncontended
// lock is cheap next to the table operations that trigger events).
type tablesWatch struct {
	id    string
	kind  Kind
	start time.Time

	mu    sync.Mutex
	done  bool
	end   time.Time
	preds map[string]*watchPred
}

func newTablesWatch(id string, kind Kind) *tablesWatch {
	return &tablesWatch{id: id, kind: kind, start: time.Now(), preds: map[string]*watchPred{}}
}

// Emit implements obs.EngineTracer.
func (w *tablesWatch) Emit(kind obs.EventKind, pred string, n int) {
	w.mu.Lock()
	p := w.preds[pred]
	if p == nil {
		p = &watchPred{}
		w.preds[pred] = p
	}
	switch kind {
	case obs.EvSubgoalNew:
		p.subgoals++
		p.tableBytes += n
	case obs.EvAnswerNew:
		p.answers++
		p.tableBytes += n
	case obs.EvComplete:
		p.completions++
	case obs.EvTableNodes:
		p.tableNodes += n
	}
	w.mu.Unlock()
}

// TablePredRow is the wire form of one predicate's live table state.
type TablePredRow struct {
	Pred        string `json:"pred"`
	Subgoals    int    `json:"subgoals"`
	Answers     int    `json:"answers"`
	Completions int    `json:"completions"`
	TableNodes  int    `json:"table_nodes"`
	TableBytes  int    `json:"table_bytes"`
}

// TableWatchReport is the wire form of one watched request.
type TableWatchReport struct {
	RequestID string         `json:"request_id"`
	Kind      Kind           `json:"kind"`
	Done      bool           `json:"done"`
	ElapsedMs int64          `json:"elapsed_ms"`
	Preds     []TablePredRow `json:"preds"`
}

// TablesReport is the wire form of /debug/tables.
type TablesReport struct {
	InFlight []TableWatchReport `json:"in_flight"`
	Recent   []TableWatchReport `json:"recent"`
}

func (w *tablesWatch) report() TableWatchReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	end := w.end
	if !w.done {
		end = time.Now()
	}
	r := TableWatchReport{
		RequestID: w.id,
		Kind:      w.kind,
		Done:      w.done,
		ElapsedMs: end.Sub(w.start).Milliseconds(),
		Preds:     make([]TablePredRow, 0, len(w.preds)),
	}
	for pred, p := range w.preds {
		r.Preds = append(r.Preds, TablePredRow{
			Pred:        pred,
			Subgoals:    p.subgoals,
			Answers:     p.answers,
			Completions: p.completions,
			TableNodes:  p.tableNodes,
			TableBytes:  p.tableBytes,
		})
	}
	sort.Slice(r.Preds, func(i, j int) bool { return r.Preds[i].Pred < r.Preds[j].Pred })
	return r
}

// tablesRegistry tracks the watches of executing requests plus a ring
// of recently finished ones.
type tablesRegistry struct {
	mu     sync.Mutex
	live   map[*tablesWatch]struct{}
	recent []*tablesWatch
	next   int
}

func newTablesRegistry() *tablesRegistry {
	return &tablesRegistry{live: map[*tablesWatch]struct{}{}}
}

// start registers a watch for one executing request.
func (reg *tablesRegistry) start(id string, kind Kind) *tablesWatch {
	w := newTablesWatch(id, kind)
	reg.mu.Lock()
	reg.live[w] = struct{}{}
	reg.mu.Unlock()
	return w
}

// finish moves a watch from the live set to the recent ring.
func (reg *tablesRegistry) finish(w *tablesWatch) {
	w.mu.Lock()
	w.done = true
	w.end = time.Now()
	w.mu.Unlock()

	reg.mu.Lock()
	delete(reg.live, w)
	if len(reg.recent) < debugRecentCap {
		reg.recent = append(reg.recent, w)
	} else {
		reg.recent[reg.next] = w
		reg.next = (reg.next + 1) % debugRecentCap
	}
	reg.mu.Unlock()
}

// snapshot renders the registry; in-flight watches sorted by start
// time, recent ones newest first.
func (reg *tablesRegistry) snapshot() TablesReport {
	reg.mu.Lock()
	live := make([]*tablesWatch, 0, len(reg.live))
	for w := range reg.live {
		live = append(live, w)
	}
	recent := make([]*tablesWatch, 0, len(reg.recent))
	// Unroll the ring newest-to-oldest.
	for i := 0; i < len(reg.recent); i++ {
		recent = append(recent, reg.recent[((reg.next-1-i)%len(reg.recent)+len(reg.recent))%len(reg.recent)])
	}
	reg.mu.Unlock()

	sort.Slice(live, func(i, j int) bool { return live[i].start.Before(live[j].start) })
	rep := TablesReport{
		InFlight: make([]TableWatchReport, 0, len(live)),
		Recent:   make([]TableWatchReport, 0, len(recent)),
	}
	for _, w := range live {
		rep.InFlight = append(rep.InFlight, w.report())
	}
	for _, w := range recent {
		rep.Recent = append(rep.Recent, w.report())
	}
	return rep
}

// handleDebugTables serves the live table view.
func (s *Service) handleDebugTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.debug.snapshot())
}
