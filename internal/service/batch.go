package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// MaxBatchItems bounds one /v1/batch request. Each item is a full
// analysis; an unbounded batch would let a single request monopolize
// the queue indefinitely.
const MaxBatchItems = 256

// batchItem is one program in a /v1/batch body: a complete request,
// kind included (batches may mix analyzers).
type batchItem struct {
	Kind      Kind    `json:"kind"`
	Source    string  `json:"source"`
	Options   Options `json:"options"`
	TimeoutMs int     `json:"timeout_ms,omitempty"`
}

// batchRequest is the /v1/batch body.
type batchRequest struct {
	Items []batchItem `json:"items"`
	// Stream requests NDJSON delivery: one result line per item as it
	// completes validation+execution, in item order. The Accept header
	// (application/x-ndjson, text/event-stream) also selects it.
	Stream bool `json:"stream,omitempty"`
	// Parallel is a batch-wide default for items that leave
	// options.parallel unset.
	Parallel int `json:"parallel,omitempty"`
}

// batchItemResult is one item's outcome. Exactly one of Response and
// Error is set: items fail independently, and a failing item never
// aborts the rest of the batch (partial failure is the contract —
// see TestBatchPartialFailure).
type batchItemResult struct {
	Index    int       `json:"index"`
	Kind     Kind      `json:"kind"`
	Error    string    `json:"error,omitempty"`
	Response *Response `json:"response,omitempty"`
}

// batchSummary trails a batch: item counts by outcome.
type batchSummary struct {
	Done   bool `json:"done"`
	Items  int  `json:"items"`
	OK     int  `json:"ok"`
	Failed int  `json:"failed"`
}

// batchResponse is the buffered (non-streaming) /v1/batch reply.
type batchResponse struct {
	Items   int               `json:"items"`
	OK      int               `json:"ok"`
	Failed  int               `json:"failed"`
	Results []batchItemResult `json:"results"`
}

// runBatch evaluates the items concurrently (each through the normal
// Do path, so caching, single-flight dedup, the disk store, and the
// worker pool all apply per item) and delivers results in item order.
// emit is called once per item, in index order, as soon as that item
// and all items before it are done; a non-nil return stops delivery
// (client gone) but not evaluation. The per-item concurrency is
// bounded by the worker pool; submissions that bounce off a full
// queue fail that item alone (ErrQueueFull), not the batch.
func (s *Service) runBatch(ctx context.Context, br *batchRequest, emit func(batchItemResult) error) batchSummary {
	s.batches.Add(1)
	s.batchItems.Add(uint64(len(br.Items)))
	results := make([]batchItemResult, len(br.Items))
	// Fan out at most Workers items at a time: the pool can run no more
	// than that anyway, and holding the rest back keeps one big batch
	// from stuffing the queue and shedding interactive requests.
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for i := range br.Items {
		it := &br.Items[i]
		if it.Options.Parallel == 0 {
			it.Options.Parallel = br.Parallel
		}
		wg.Add(1)
		go func(i int, it *batchItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, err := s.Do(ctx, &Request{
				Kind:      it.Kind,
				Source:    it.Source,
				Options:   it.Options,
				TimeoutMs: it.TimeoutMs,
			})
			r := batchItemResult{Index: i, Kind: it.Kind, Response: resp}
			if err != nil {
				r.Response = nil
				r.Error = err.Error()
				s.batchItemErrors.Add(1)
			}
			results[i] = r
		}(i, it)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-done

	sum := batchSummary{Done: true, Items: len(br.Items)}
	for _, r := range results {
		if r.Error != "" {
			sum.Failed++
		} else {
			sum.OK++
		}
		if emit != nil {
			if err := emit(r); err != nil {
				emit = nil
			}
		}
	}
	return sum
}

// handleBatch serves POST /v1/batch: many programs, one request. Items
// run concurrently through the normal per-request path and fail
// independently; the batch itself only fails on malformed bodies or
// shutdown. The reply is one buffered JSON document, or NDJSON/SSE
// lines (header, one result per item in order, summary trailer) when
// streaming is negotiated.
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.admitHTTP(w, r) {
		return
	}
	var body batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %v", err))
		return
	}
	if len(body.Items) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: empty batch", ErrBadRequest))
		return
	}
	if len(body.Items) > MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: batch of %d exceeds %d items", ErrBadRequest, len(body.Items), MaxBatchItems))
		return
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, ErrClosed)
		return
	}

	if format := pickStreamFormat(r, body.Stream); format != streamNone {
		s.streams.Add(1)
		flusher, _ := w.(http.Flusher)
		if format == streamSSE {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		writeEvent := func(event string, v any) error {
			if format == streamSSE {
				if _, err := w.Write([]byte("event: " + event + "\ndata: ")); err != nil {
					return err
				}
			}
			if err := enc.Encode(v); err != nil {
				return err
			}
			if format == streamSSE {
				if _, err := w.Write([]byte("\n")); err != nil {
					return err
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}
		if err := writeEvent("header", struct {
			Items int `json:"items"`
		}{len(body.Items)}); err != nil {
			return
		}
		sum := s.runBatch(r.Context(), &body, func(res batchItemResult) error {
			return writeEvent("item", res)
		})
		writeEvent("done", sum) //nolint:errcheck // final write; client gone means nothing to do
		return
	}

	out := batchResponse{Items: len(body.Items)}
	sum := s.runBatch(r.Context(), &body, func(res batchItemResult) error {
		out.Results = append(out.Results, res)
		return nil
	})
	out.OK, out.Failed = sum.OK, sum.Failed
	writeJSON(w, http.StatusOK, out)
}
