package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"xlp/internal/engine"
	"xlp/internal/harness"
	"xlp/internal/obs"
)

// apiRequest is the HTTP body of an analyze/query call; the kind comes
// from the URL path.
type apiRequest struct {
	Source    string  `json:"source"`
	Options   Options `json:"options"`
	TimeoutMs int     `json:"timeout_ms,omitempty"`
}

// apiError is the HTTP error body.
type apiError struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/analyze/{kind}  kind ∈ groundness|gaia|bdd|strictness|depthk
//	                         (options.lint attaches linter diagnostics)
//	POST /v1/lint            object-program linter (options.lang: prolog|fl)
//	POST /v1/query           raw tabled query (options.goal required)
//	POST /v1/explain         answer provenance: justification DAG of a
//	                         predicate's answers (options.pred, options.lang)
//	POST /v1/batch           many programs in one request; items run
//	                         concurrently and fail independently
//	GET  /v1/stats           counters; ?format=text for a rendered table
//	GET  /debug/tables       live per-predicate table state of executing runs
//	GET  /metrics            Prometheus text exposition
//
// Every POST endpoint supports streaming delivery (options.stream, or
// Accept: application/x-ndjson / text/event-stream) and sits behind
// per-client admission control when Config.RateLimit is set: shed
// requests get 429 with a Retry-After header.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze/{kind}", s.timed("POST /v1/analyze/{kind}", s.handleAnalyze))
	mux.HandleFunc("POST /v1/lint", s.timed("POST /v1/lint", s.handleLint))
	mux.HandleFunc("POST /v1/query", s.timed("POST /v1/query", s.handleQuery))
	mux.HandleFunc("POST /v1/explain", s.timed("POST /v1/explain", s.handleExplain))
	mux.HandleFunc("POST /v1/batch", s.timed("POST /v1/batch", s.handleBatch))
	mux.HandleFunc("GET /v1/stats", s.timed("GET /v1/stats", s.handleStats))
	mux.HandleFunc("GET /debug/tables", s.timed("GET /debug/tables", s.handleDebugTables))
	mux.HandleFunc("GET /metrics", s.timed("GET /metrics", s.handleMetrics))
	return mux
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	kind := Kind(r.PathValue("kind"))
	if !kind.Valid() || kind == KindQuery || kind == KindLint {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown analysis kind %q", kind))
		return
	}
	s.serve(w, r, kind)
}

func (s *Service) handleLint(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, KindLint)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, KindQuery)
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.serve(w, r, KindExplain)
}

func (s *Service) serve(w http.ResponseWriter, r *http.Request, kind Kind) {
	if !s.admitHTTP(w, r) {
		return
	}
	var body apiRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	resp, err := s.Do(r.Context(), &Request{
		Kind:      kind,
		Source:    body.Source,
		Options:   body.Options,
		TimeoutMs: body.TimeoutMs,
	})
	if err != nil {
		status := statusFor(err)
		if status == http.StatusTooManyRequests {
			// Shed load always carries a retry hint; queue pressure is
			// transient, so "soon" is honest.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	if format := pickStreamFormat(r, body.Options.Stream); format != streamNone {
		s.streamResponse(w, format, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// admitHTTP runs per-client admission control before any body decoding
// happens; a shed request costs the server one map lookup and a 429.
func (s *Service) admitHTTP(w http.ResponseWriter, r *http.Request) bool {
	client := ClientID(r)
	ok, retry := s.Admit(client)
	if ok {
		return true
	}
	secs := int(retry.Seconds() + 0.999)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("%w: client %q over admission rate", ErrRateLimited, client))
	return false
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		statsTable(st).Render(w)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Stats
		HitRate float64  `json:"hit_rate"`
		Build   obs.Info `json:"build"`
	}{st, st.HitRate(), obs.Build(s.cfg.Version)})
}

// statsTable renders the counters in the same tabular form as the
// paper-reproduction harness, with its phase-timing columns.
func statsTable(st Stats) *harness.Table {
	n := func(v uint64) string { return fmt.Sprint(v) }
	us := func(v int64) string { return fmt.Sprintf("%.2f", float64(v)/1000.0) }
	return &harness.Table{
		Title: "Analysis service counters",
		Columns: []string{"Requests", "Hits", "Misses", "Deduped", "Executed",
			"Failures", "Queue", "InFlight", "Preproc(ms)", "Analysis(ms)", "Collection(ms)"},
		Rows: [][]string{{
			n(st.Requests), n(st.Hits), n(st.Misses), n(st.Deduped), n(st.Executed),
			n(st.Failures), fmt.Sprint(st.QueueDepth), fmt.Sprint(st.InFlight),
			us(st.PreprocUs), us(st.AnalysisUs), us(st.CollectionUs),
		}},
		Notes: []string{
			fmt.Sprintf("cache %d/%d entries, hit rate %.1f%%, %d workers",
				st.CacheLen, st.CacheCap, 100*st.HitRate(), st.Workers),
			func() string {
				if st.Store == nil {
					return fmt.Sprintf("disk store off; shed %d (queue) + %d (rate), %d streamed",
						st.ShedQueue, st.ShedRate, st.Streams)
				}
				return fmt.Sprintf("disk store %d entries, %d hits, %d writes, %d corrupt; shed %d (queue) + %d (rate), %d streamed",
					st.Store.Entries, st.Store.Hits, st.Store.Writes, st.Store.Corrupt,
					st.ShedQueue, st.ShedRate, st.Streams)
			}(),
			fmt.Sprintf("uptime %.0fs, peak in-flight %d, peak queue depth %d",
				st.UptimeSeconds, st.PeakInFlight, st.PeakQueueDepth),
			fmt.Sprintf("lint: %d requests, %d diagnostics",
				st.LintRequests, st.LintDiagnostics),
			fmt.Sprintf("batch: %d batches, %d items, %d item errors; %d parallel-eligible runs",
				st.Batches, st.BatchItems, st.BatchItemErrors, st.ParallelRuns),
			fmt.Sprintf("engine: %d resolutions, %d subgoals, %d answers, %d producer runs, %d table bytes",
				st.Engine.Resolutions, st.Engine.Subgoals, st.Engine.Answers,
				st.Engine.ProducerRuns, st.Engine.TableBytes),
		},
	}
}

// statusFor maps service and engine errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, engine.ErrDeadline):
		return http.StatusGatewayTimeout // 504: evaluation deadline expired
	case errors.Is(err, engine.ErrCanceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrDepthLimit),
		errors.Is(err, engine.ErrAnswerLimit),
		errors.Is(err, engine.ErrSubgoalLimit):
		return http.StatusUnprocessableEntity // program exceeds resource limits
	default:
		return http.StatusUnprocessableEntity // analysis/parse failure
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}
