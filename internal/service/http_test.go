package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, QueueSize: 16})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPAnalyzeGroundness(t *testing.T) {
	_, srv := newTestServer(t)
	hr, body := post(t, srv.URL+"/v1/analyze/groundness", apiRequest{
		Source: "ap([], L, L).\nap([H|T], L, [H|R]) :- ap(T, L, R).",
	})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr.StatusCode, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindGroundness || len(resp.Predicates) != 1 {
		t.Fatalf("unexpected response: %s", body)
	}
	p := resp.Predicates[0]
	if p.Indicator != "ap/3" || p.Success == "" {
		t.Errorf("bad predicate report: %+v", p)
	}
}

func TestHTTPQueryAndStats(t *testing.T) {
	_, srv := newTestServer(t)
	req := apiRequest{
		Source:  ":- table anc/2.\npar(a,b). par(b,c).\nanc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).",
		Options: Options{Goal: "anc(a, X)"},
	}
	hr, body := post(t, srv.URL+"/v1/query", req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hr.StatusCode, body)
	}
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Solutions) != 2 {
		t.Fatalf("want 2 solutions, got %v", resp.Solutions)
	}

	// Identical repeat: served from cache, visible in /v1/stats.
	if _, body := post(t, srv.URL+"/v1/query", req); !strings.Contains(string(body), `"cached": true`) {
		t.Errorf("repeat not served from cache: %s", body)
	}
	sr, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st struct {
		Stats
		HitRate float64 `json:"hit_rate"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 || st.Executed != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate %v, want 0.5", st.HitRate)
	}

	tr, err := http.Get(srv.URL + "/v1/stats?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	text, _ := io.ReadAll(tr.Body)
	if !strings.Contains(string(text), "Analysis service counters") {
		t.Errorf("text stats missing table: %s", text)
	}
}

func TestHTTPDeadline504(t *testing.T) {
	_, srv := newTestServer(t)
	hr, body := post(t, srv.URL+"/v1/query", apiRequest{
		Source:    divergentSrc,
		Options:   Options{Goal: "slow"},
		TimeoutMs: 50,
	})
	if hr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", hr.StatusCode, body)
	}
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("bad error body: %s", body)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t)
	for _, tc := range []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"unknown kind", "/v1/analyze/typestate", apiRequest{Source: "a."}, http.StatusNotFound},
		{"query via analyze", "/v1/analyze/query", apiRequest{Source: "a."}, http.StatusNotFound},
		{"empty source", "/v1/analyze/groundness", apiRequest{}, http.StatusBadRequest},
		{"parse error", "/v1/analyze/groundness", apiRequest{Source: "a :- ."}, http.StatusUnprocessableEntity},
		{"query without goal", "/v1/query", apiRequest{Source: "a."}, http.StatusBadRequest},
		{"unknown field", "/v1/query", map[string]any{"prog": "a."}, http.StatusBadRequest},
	} {
		hr, body := post(t, srv.URL+tc.path, tc.body)
		if hr.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, hr.StatusCode, tc.status, body)
		}
	}
}

func TestHTTPAllAnalyzeKinds(t *testing.T) {
	_, srv := newTestServer(t)
	logic := "ap([], L, L).\nap([H|T], L, [H|R]) :- ap(T, L, R)."
	fn := "ap(nil, Y) = Y.\nap(cons(X, Xs), Y) = cons(X, ap(Xs, Y))."
	for _, tc := range []struct {
		kind Kind
		src  string
	}{
		{KindGroundness, logic},
		{KindGAIA, logic},
		{KindBDD, logic},
		{KindDepthK, logic},
		{KindStrictness, fn},
	} {
		hr, body := post(t, fmt.Sprintf("%s/v1/analyze/%s", srv.URL, tc.kind), apiRequest{Source: tc.src})
		if hr.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", tc.kind, hr.StatusCode, body)
			continue
		}
		var resp Response
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Errorf("%s: %v", tc.kind, err)
			continue
		}
		if resp.Kind != tc.kind {
			t.Errorf("kind %s, want %s", resp.Kind, tc.kind)
		}
		if len(resp.Predicates)+len(resp.Functions) == 0 {
			t.Errorf("%s: empty result: %s", tc.kind, body)
		}
	}
}
