package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"xlp/internal/bddprop"
	"xlp/internal/corpus"
	"xlp/internal/depthk"
	"xlp/internal/engine"
	"xlp/internal/gaia"
	"xlp/internal/prop"
	"xlp/internal/service/store"
	"xlp/internal/strict"
	"xlp/internal/testutil"
)

// divergentSrc backtracks through 4^16 combinations at constant depth:
// effectively unbounded wall-clock without tripping any resource limit.
const divergentSrc = `
p(0). p(1). p(2). p(3).
slow :- p(A1),p(A2),p(A3),p(A4),p(A5),p(A6),p(A7),p(A8),
        p(B1),p(B2),p(B3),p(B4),p(B5),p(B6),p(B7),p(B8),
        A1 = A2, B1 = B2, fail.
`

// slowOKSrc succeeds (once) after ~4^10 backtracks: slow enough that
// concurrent identical requests overlap, fast enough to finish.
const slowOKSrc = `
p(0). p(1). p(2). p(3).
q :- p(A),p(B),p(C),p(D),p(E),p(F),p(G),p(H),p(I),p(J), fail.
q.
`

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

// normalize strips the per-run volatile fields so responses from
// different runs of the same request compare equal.
func normalize(r *Response) *Response {
	cp := r.shallowCopy()
	cp.Cached, cp.Stored, cp.Deduped = false, false, false
	cp.Timings = Timings{}
	// Engine counters are cost metrics, not results: evaluation order
	// (map iteration) legitimately varies them between runs.
	cp.Engine = nil
	return cp
}

// directResponse computes the expected response for req without the
// service, via the same wire-form builders.
func directResponse(t *testing.T, req *Request) *Response {
	t.Helper()
	resp, err := execute(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("direct %s: %v", req.Kind, err)
	}
	return resp
}

// mixedCorpusRequests builds a request per analyzer over corpus
// programs, plus a raw query.
func mixedCorpusRequests(t *testing.T) []*Request {
	t.Helper()
	var reqs []*Request
	logic := []string{"qsort", "queens", "pg"}
	for _, name := range logic {
		p, err := corpus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs,
			&Request{Kind: KindGroundness, Source: p.Source},
			&Request{Kind: KindGAIA, Source: p.Source},
			&Request{Kind: KindBDD, Source: p.Source},
			&Request{Kind: KindDepthK, Source: p.Source, Options: Options{K: 1}},
		)
	}
	for _, name := range []string{"quicksort", "mergesort"} {
		p, err := corpus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, &Request{Kind: KindStrictness, Source: p.Source})
	}
	reqs = append(reqs, &Request{
		Kind:    KindQuery,
		Source:  ":- table path/2.\nedge(a,b). edge(b,c). edge(c,a).\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).",
		Options: Options{Goal: "path(a, X)"},
	})
	return reqs
}

// TestTorture pushes 32 goroutines of mixed corpus analyses through the
// pool and asserts every response equals the direct Analyze* result.
// Run under -race.
func TestTorture(t *testing.T) {
	reqs := mixedCorpusRequests(t)
	want := make([]*Response, len(reqs))
	for i, req := range reqs {
		want[i] = normalize(directResponse(t, req))
	}

	s := newTestService(t, Config{Workers: 8, QueueSize: 1024, CacheSize: 8})
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(reqs); i++ {
				// Stagger start points so goroutines hit different
				// requests concurrently.
				idx := (g + i) % len(reqs)
				resp, err := s.Do(context.Background(), reqs[idx])
				if err != nil {
					errs <- fmt.Errorf("g%d req%d (%s): %v", g, idx, reqs[idx].Kind, err)
					return
				}
				if got := normalize(resp); !reflect.DeepEqual(got, want[idx]) {
					errs <- fmt.Errorf("g%d req%d (%s): response differs from direct analysis\n got: %+v\nwant: %+v",
						g, idx, reqs[idx].Kind, got, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Requests != goroutines*uint64(len(reqs)) {
		t.Errorf("requests counter: got %d, want %d", st.Requests, goroutines*len(reqs))
	}
	if st.Hits+st.Misses+st.Deduped != st.Requests {
		t.Errorf("counters leak: hits %d + misses %d + deduped %d != requests %d",
			st.Hits, st.Misses, st.Deduped, st.Requests)
	}
}

// TestDeadline checks the acceptance criterion: a 50ms deadline against
// a divergent program returns ErrDeadline within ~2x the deadline, and
// shutdown leaves no goroutines behind.
func TestDeadline(t *testing.T) {
	before := testutil.Goroutines()
	s := New(Config{Workers: 2, QueueSize: 8})

	start := time.Now()
	_, err := s.Do(context.Background(), &Request{
		Kind:      KindQuery,
		Source:    divergentSrc,
		Options:   Options{Goal: "slow"},
		TimeoutMs: 50,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, engine.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	// ~2x the deadline; the margin absorbs scheduler noise on loaded
	// CI machines without weakening the point (the engine polls its
	// context every few hundred resolution steps).
	if elapsed > 500*time.Millisecond {
		t.Errorf("deadline enforcement took %v, want about 100ms", elapsed)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The worker that ran the divergent program also stops: Do's
	// deferred cancel fires when Do returns, and the engine aborts at
	// its next context poll. The leak helper polls until the labeled
	// goroutine profile settles back to the before snapshot.
	testutil.AssertNoLeaks(t, before)
}

// TestWarmCache checks the acceptance criterion: a repeat of an
// identical request is served from the cache at least 50x faster than
// the cold run and increments the hit counter.
func TestWarmCache(t *testing.T) {
	p, err := corpus.Get("read")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{Workers: 2})
	req := &Request{Kind: KindGroundness, Source: p.Source}

	t0 := time.Now()
	cold, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	coldD := time.Since(t0)
	if cold.Cached {
		t.Fatal("cold response marked cached")
	}

	// Take the fastest of a few warm reads so one scheduler hiccup
	// cannot mask the cache speedup.
	var warm *Response
	warmD := time.Hour
	for i := 0; i < 5; i++ {
		t1 := time.Now()
		warm, err = s.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t1); d < warmD {
			warmD = d
		}
	}
	if !warm.Cached {
		t.Fatal("warm response not marked cached")
	}
	if !reflect.DeepEqual(normalize(warm), normalize(cold)) {
		t.Error("warm response differs from cold")
	}
	if st := s.Stats(); st.Hits != 5 || st.Misses != 1 || st.Executed != 1 {
		t.Errorf("counters: hits %d misses %d executed %d, want 5/1/1",
			st.Hits, st.Misses, st.Executed)
	}
	if coldD < 50*warmD {
		t.Errorf("warm not >=50x faster: cold %v, warm %v (%.0fx)",
			coldD, warmD, float64(coldD)/float64(warmD))
	}
}

// TestSingleFlight fires identical concurrent requests and asserts the
// analysis ran exactly once (the dedup acceptance criterion).
func TestSingleFlight(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueSize: 64})
	req := &Request{Kind: KindQuery, Source: slowOKSrc, Options: Options{Goal: "q"}}

	const concurrent = 8
	var wg sync.WaitGroup
	responses := make([]*Response, concurrent)
	errs := make([]error, concurrent)
	start := make(chan struct{})
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i], errs[i] = s.Do(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < concurrent; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got, want := responses[i].Solutions, []string{"q"}; !reflect.DeepEqual(got, want) {
			t.Fatalf("request %d solutions: got %v, want %v", i, got, want)
		}
	}
	st := s.Stats()
	if st.Executed != 1 {
		t.Errorf("executed %d analyses, want exactly 1 (single-flight)", st.Executed)
	}
	if st.Misses != 1 {
		t.Errorf("misses %d, want 1", st.Misses)
	}
	if st.Hits+st.Deduped != concurrent-1 {
		t.Errorf("hits %d + deduped %d, want %d", st.Hits, st.Deduped, concurrent-1)
	}
}

// TestQueueFull checks the bounded queue fails fast when saturated.
func TestQueueFull(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueSize: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	unique := func(i int) *Request {
		// Distinct sources: distinct cache keys, so no dedup. The long
		// deadline keeps the pool saturated until the test cancels ctx;
		// the occupying requests never run to it.
		return &Request{
			Kind:      KindQuery,
			Source:    fmt.Sprintf("%s\nmark(%d).", divergentSrc, i),
			Options:   Options{Goal: "slow"},
			TimeoutMs: 10000,
		}
	}
	var wg sync.WaitGroup
	// Occupy the worker, then the one queue slot — strictly in that
	// order. Submitting both concurrently races the second request
	// against the worker's dequeue of the first: if it loses, it bounces
	// off the still-full queue and the pool never saturates.
	await := func(cond func(Stats) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond(s.Stats()) {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("pool never reached %s", what)
	}
	occupy := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(ctx, unique(i)) //nolint:errcheck // canceled by the test
		}()
	}
	occupy(0)
	await(func(st Stats) bool { return st.InFlight == 1 && st.QueueDepth == 0 }, "one running request")
	occupy(1)
	await(func(st Stats) bool { return st.InFlight == 1 && st.QueueDepth == 1 }, "one running + one queued request")
	_, err := s.Do(context.Background(), unique(2))
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("want ErrQueueFull, got %v", err)
	}
	cancel()
	wg.Wait()
}

// TestShutdownDrain checks Shutdown completes queued work and rejects
// new requests.
func TestShutdownDrain(t *testing.T) {
	s := New(Config{Workers: 2})
	req := &Request{Kind: KindQuery, Source: "a(1).", Options: Options{Goal: "a(X)"}}
	if _, err := s.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed after shutdown, got %v", err)
	}
	if err := s.Shutdown(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("second shutdown: want ErrClosed, got %v", err)
	}
}

// TestValidation covers the request validation errors.
func TestValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	for _, tc := range []struct {
		name string
		req  *Request
	}{
		{"unknown kind", &Request{Kind: "nope", Source: "a."}},
		{"empty source", &Request{Kind: KindGroundness}},
		{"query without goal", &Request{Kind: KindQuery, Source: "a."}},
		{"bad mode", &Request{Kind: KindGroundness, Source: "a.", Options: Options{Mode: "jit"}}},
		{"negative timeout", &Request{Kind: KindGroundness, Source: "a.", TimeoutMs: -1}},
	} {
		if _, err := s.Do(context.Background(), tc.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: want ErrBadRequest, got %v", tc.name, err)
		}
	}
}

// TestCacheKeyCanonicalization: requests differing only in defaulted or
// kind-irrelevant options share one content address.
func TestCacheKeyCanonicalization(t *testing.T) {
	base := &Request{Kind: KindGroundness, Source: "a(1)."}
	same := []*Request{
		{Kind: KindGroundness, Source: "a(1).", Options: Options{Mode: "dynamic"}},
		{Kind: KindGroundness, Source: "a(1).", Options: Options{K: 3, Goal: "zz"}},
	}
	for i, r := range same {
		if r.CacheKey() != base.CacheKey() {
			t.Errorf("variant %d: key differs from base", i)
		}
	}
	diff := []*Request{
		{Kind: KindGAIA, Source: "a(1)."},
		{Kind: KindGroundness, Source: "a(2)."},
		{Kind: KindGroundness, Source: "a(1).", Options: Options{Mode: "compiled"}},
		{Kind: KindGroundness, Source: "a(1).", Options: Options{Entry: []string{"a(X)"}}},
	}
	for i, r := range diff {
		if r.CacheKey() == base.CacheKey() {
			t.Errorf("variant %d: key should differ from base", i)
		}
	}
	// depthk: K=0 canonicalizes to the default K=2.
	k0 := &Request{Kind: KindDepthK, Source: "a(1)."}
	k2 := &Request{Kind: KindDepthK, Source: "a(1).", Options: Options{K: 2}}
	if k0.CacheKey() != k2.CacheKey() {
		t.Error("depthk K=0 and K=2 should share a key")
	}
}

// TestLRUEviction checks the cache respects its capacity bound.
func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	r := &Response{Kind: KindQuery}
	c.Add("a", r)
	c.Add("b", r)
	c.Add("c", r) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b should be cached")
	}
	c.Add("d", r) // evicts c (b was just used)
	if _, ok := c.Get("c"); ok {
		t.Error("c should have been evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

// TestCanceledContext: an already-canceled caller context fails with
// ErrCanceled without running the analysis.
func TestCanceledContext(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Do(ctx, &Request{Kind: KindQuery, Source: divergentSrc, Options: Options{Goal: "slow"}})
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestAnalyzerCtxVariants exercises every analyzer's context plumbing
// with an expired deadline.
func TestAnalyzerCtxVariants(t *testing.T) {
	p, err := corpus.Get("kalah")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := prop.Analyze(p.Source, prop.Options{Ctx: ctx}); !errors.Is(err, engine.ErrDeadline) {
		t.Errorf("prop: want ErrDeadline, got %v", err)
	}
	if _, err := strict.Analyze(mustSrc(t, "quicksort"), strict.Options{Ctx: ctx}); !errors.Is(err, engine.ErrDeadline) {
		t.Errorf("strict: want ErrDeadline, got %v", err)
	}
	if _, err := depthk.Analyze(p.Source, depthk.Options{Ctx: ctx}); !errors.Is(err, engine.ErrDeadline) {
		t.Errorf("depthk: want ErrDeadline, got %v", err)
	}
	if _, err := gaia.AnalyzeCtx(ctx, p.Source); !errors.Is(err, engine.ErrDeadline) {
		t.Errorf("gaia: want ErrDeadline, got %v", err)
	}
	if _, err := bddprop.AnalyzeCtx(ctx, p.Source); !errors.Is(err, engine.ErrDeadline) {
		t.Errorf("bddprop: want ErrDeadline, got %v", err)
	}
}

func mustSrc(t *testing.T, name string) string {
	t.Helper()
	p, err := corpus.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Source
}

// TestStoreWarmRestart checks the durable-store acceptance criterion at
// the service level: a result computed by one service instance is
// served warm — without re-execution — by a fresh instance opened on
// the same store directory, and the payload survives the round trip.
func TestStoreWarmRestart(t *testing.T) {
	cfg := Config{Workers: 2, StoreDir: t.TempDir()}
	req := &Request{Kind: KindGroundness, Source: mustSrc(t, "qsort")}

	s1 := New(cfg)
	cold, err := s1.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Stored {
		t.Fatalf("cold run flagged cached=%v stored=%v", cold.Cached, cold.Stored)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulated restart: a new process on the same directory.
	s2 := newTestService(t, cfg)
	warm, err := s2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stored || !warm.Cached {
		t.Errorf("warm restart response flagged cached=%v stored=%v, want true/true", warm.Cached, warm.Stored)
	}
	if !reflect.DeepEqual(normalize(warm), normalize(cold)) {
		t.Error("store-served response differs from the original computation")
	}
	st := s2.Stats()
	if st.Executed != 0 || st.Hits != 1 {
		t.Errorf("restarted service recomputed: executed %d, hits %d", st.Executed, st.Hits)
	}
	if st.Store == nil || st.Store.Hits != 1 || st.Store.Entries != 1 {
		t.Errorf("store stats: %+v", st.Store)
	}

	// The disk hit was promoted to the LRU: a repeat is a memory hit.
	again, err := s2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat after promotion not served from the memory cache")
	}
	if got := s2.Stats().Store.Hits; got != 1 {
		t.Errorf("repeat went back to disk: store hits %d, want 1", got)
	}
}

// TestStoreCorruptPayloadIsMiss: a stored frame whose checksum holds but
// whose JSON no longer decodes as a Response (schema drift) is dropped
// and recomputed, never surfaced as an error.
func TestStoreCorruptPayloadIsMiss(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, StoreDir: dir}
	req := &Request{Kind: KindQuery, Source: "a(1).", Options: Options{Goal: "a(X)"}}

	s1 := New(cfg)
	if _, err := s1.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the entry with a frame that is valid at the codec layer
	// but is not a Response object.
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(req.CacheKey(), []byte(`[1, 2, 3]`)); err != nil {
		t.Fatal(err)
	}

	s2 := newTestService(t, cfg)
	resp, err := s2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stored || resp.Cached {
		t.Errorf("undecodable payload served warm: cached=%v stored=%v", resp.Cached, resp.Stored)
	}
	stats := s2.Stats()
	if stats.Executed != 1 {
		t.Errorf("executed %d, want 1 (recompute)", stats.Executed)
	}
	if stats.Store.Corrupt == 0 {
		t.Error("corrupt counter not bumped for undecodable payload")
	}
}
