package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xlp/internal/bddprop"
	"xlp/internal/depthk"
	"xlp/internal/engine"
	"xlp/internal/gaia"
	"xlp/internal/obs"
	"xlp/internal/prop"
	"xlp/internal/service/store"
	"xlp/internal/strict"
)

// Service front-door errors (the engine's sentinel errors — ErrDeadline,
// ErrCanceled, the limit errors — pass through from evaluation).
var (
	// ErrBadRequest: the request failed validation; wraps detail.
	ErrBadRequest = errors.New("service: bad request")
	// ErrQueueFull: the bounded request queue is at capacity.
	ErrQueueFull = errors.New("service: queue full")
	// ErrRateLimited: the client exceeded its admission rate.
	ErrRateLimited = errors.New("service: rate limited")
	// ErrClosed: the service is shut down or shutting down.
	ErrClosed = errors.New("service: closed")
)

// Config sizes a Service.
type Config struct {
	// Workers is the number of pool workers; each worker confines one
	// engine.Machine at a time (machines are not goroutine-safe).
	// Default: GOMAXPROCS.
	Workers int
	// QueueSize bounds the number of queued-but-not-running requests;
	// submissions beyond it fail fast with ErrQueueFull. Default 64.
	QueueSize int
	// CacheSize is the LRU result-cache capacity in entries. Default
	// 128; 0 uses the default, negative disables caching.
	CacheSize int
	// DefaultTimeout bounds requests that do not set TimeoutMs.
	// Default 30s; negative means no default timeout.
	DefaultTimeout time.Duration
	// Version overrides the build-info version reported by /v1/stats and
	// /metrics (set from -ldflags "-X main.version=..."). Empty uses the
	// module version embedded by the Go toolchain.
	Version string
	// Logger receives the service's structured request logs (accepted,
	// cache hit, dedup join, execution start/finish with engine
	// counters), each line carrying the request correlation ID as "req".
	// Nil discards them.
	Logger *slog.Logger
	// StoreDir roots the disk-backed result store under the LRU: results
	// written there survive restarts and are served as hits by any later
	// process pointed at the same directory. Empty disables the store.
	// If the directory cannot be opened the service logs the error and
	// runs storeless rather than failing to start.
	StoreDir string
	// StoreMaxEntries caps the disk store's entry count (oldest entries
	// are swept past the cap). 0 means unlimited.
	StoreMaxEntries int
	// RateLimit enables per-client admission control: each client (the
	// X-Client-ID header, else the remote host) gets a token bucket
	// refilled at RateLimit requests/second. Shed requests get 429 +
	// Retry-After. 0 disables admission control.
	RateLimit float64
	// RateBurst is the token-bucket capacity (max burst per client).
	// Default: 2*RateLimit, at least 8.
	RateBurst int
	// MaxClients bounds the admission controller's per-client state
	// (least-recently-seen clients are evicted). Default 1024.
	MaxClients int
	// DefaultParallel is the intra-query concurrency applied to tabled
	// analysis requests that leave options.parallel unset (xlpd
	// -parallel). 0 or 1 evaluates sequentially. Results are identical
	// at every setting.
	DefaultParallel int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.DefaultTimeout < 0 {
		c.DefaultTimeout = 0
	}
	if c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RateLimit)
		if c.RateBurst < 8 {
			c.RateBurst = 8
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 1024
	}
	return c
}

// flight is one in-progress computation that concurrent identical
// requests share (single-flight deduplication).
type flight struct {
	done chan struct{} // closed when resp/err are set
	resp *Response
	err  error
}

// job is one queued unit of work.
type job struct {
	ctx context.Context
	req *Request
	key string
	f   *flight
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Requests uint64 `json:"requests"` // accepted requests (past validation)
	Hits     uint64 `json:"hits"`     // served from the result cache
	Misses   uint64 `json:"misses"`   // led a fresh computation
	Deduped  uint64 `json:"deduped"`  // joined an identical in-flight request
	Executed uint64 `json:"executed"` // analyses actually run by workers
	Failures uint64 `json:"failures"` // executions that returned an error

	// Linter counters: executed requests that ran the linter (kind
	// "lint" or options.lint on an analyze kind) and the total
	// diagnostics they produced. Cache hits are not re-counted.
	LintRequests    uint64 `json:"lint_requests"`
	LintDiagnostics uint64 `json:"lint_diagnostics"`

	// Shed counters partition rejected load by reason: ShedQueue counts
	// requests bounced off the full queue (ErrQueueFull), ShedRate
	// requests denied by per-client admission control (ErrRateLimited).
	// Both are surfaced as 429 + Retry-After over HTTP.
	ShedQueue uint64 `json:"shed_queue"`
	ShedRate  uint64 `json:"shed_rate"`
	// Streams counts responses delivered incrementally (NDJSON or SSE).
	Streams uint64 `json:"streams"`

	// Batch counters: /v1/batch requests accepted, the items they
	// carried, and the items that failed (per-item errors never fail
	// the batch).
	Batches         uint64 `json:"batches"`
	BatchItems      uint64 `json:"batch_items"`
	BatchItemErrors uint64 `json:"batch_item_errors"`
	// ParallelRuns counts executed analyses whose solve phase was
	// eligible for intra-query parallelism (effective parallelism > 1,
	// from options.parallel or the server default).
	ParallelRuns uint64 `json:"parallel_runs"`

	// Store snapshots the disk-backed result store's counters; nil when
	// the store is disabled.
	Store *store.Stats `json:"store,omitempty"`

	QueueDepth int `json:"queue_depth"` // queued, not yet picked up
	InFlight   int `json:"in_flight"`   // currently executing
	Workers    int `json:"workers"`
	CacheLen   int `json:"cache_len"`
	CacheCap   int `json:"cache_cap"`

	// UptimeSeconds is the time since New; PeakInFlight and
	// PeakQueueDepth are high-water marks of the matching gauges over
	// that window (capacity-planning view of the pool and queue).
	UptimeSeconds  float64 `json:"uptime_seconds"`
	PeakInFlight   int     `json:"peak_in_flight"`
	PeakQueueDepth int     `json:"peak_queue_depth"`

	// Cumulative phase timings over executed analyses (the paper's
	// preprocess / analysis / collection breakdown).
	PreprocUs    int64 `json:"preproc_us"`
	AnalysisUs   int64 `json:"analysis_us"`
	CollectionUs int64 `json:"collection_us"`

	// Engine aggregates the engine counters of every executed run on a
	// tabled kind (groundness, strictness, depthk, query). Cache hits
	// and deduped joins are not re-counted.
	Engine EngineReport `json:"engine"`
}

// HitRate returns cache hits over cache-decided requests (hits+misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Service is the concurrent analysis front end. Create with New, run
// requests with Do (or over HTTP via Handler), stop with Shutdown.
type Service struct {
	cfg    Config
	logger *slog.Logger
	jobs   chan *job
	wg     sync.WaitGroup
	cache  *lruCache
	disk   *store.Store // nil when Config.StoreDir is empty or unopenable
	adm    *admission   // nil when Config.RateLimit is 0
	start  time.Time
	debug  *tablesRegistry // /debug/tables live table watches

	mu       sync.Mutex // guards closed and inflight, and serializes submit vs Shutdown
	closed   bool
	inflight map[string]*flight

	requests, hits, misses, deduped, executed, failures atomic.Uint64
	lintRequests, lintDiagnostics                       atomic.Uint64
	shedQueue, shedRate, streams                        atomic.Uint64
	batches, batchItems, batchItemErrors, parallelRuns  atomic.Uint64
	inFlightN                                           atomic.Int64
	peakInFlight, peakQueueDepth                        atomic.Int64
	preprocUs, analysisUs, collectionUs                 atomic.Int64

	// Engine-counter aggregates over executed runs (see Stats.Engine).
	engResolutions, engBuiltinCalls, engSubgoals, engAnswers atomic.Int64
	engProducerRuns, engProducerPasses, engTableBytes        atomic.Int64
	engCallBytes, engAnswerBytes, engTableNodes              atomic.Int64
	engPredsCompiled, engCompileNanos, engProvenanceBytes    atomic.Int64

	// latency holds one request-duration histogram per kind; routes
	// holds one per HTTP route. Both maps are fixed at New and only read
	// afterwards, so lock-free access is safe.
	latency map[Kind]*obs.Histogram
	routes  map[string]*obs.Histogram
}

// New starts a service with cfg's worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Service{
		cfg:      cfg,
		logger:   logger,
		jobs:     make(chan *job, cfg.QueueSize),
		cache:    newLRU(cfg.CacheSize),
		start:    time.Now(),
		debug:    newTablesRegistry(),
		inflight: map[string]*flight{},
		latency:  map[Kind]*obs.Histogram{},
		routes:   map[string]*obs.Histogram{},
	}
	for _, k := range Kinds() {
		s.latency[k] = obs.NewHistogram(obs.DefBuckets...)
	}
	for _, route := range routePatterns {
		s.routes[route] = obs.NewHistogram(obs.DefBuckets...)
	}
	if cfg.StoreDir != "" {
		disk, err := store.Open(cfg.StoreDir, cfg.StoreMaxEntries)
		if err != nil {
			// Degrade, don't die: an unopenable store directory costs
			// warm restarts, not availability.
			logger.Error("disk store disabled", "dir", cfg.StoreDir, "err", err)
		} else {
			s.disk = disk
			logger.Info("disk store open", "dir", cfg.StoreDir, "entries", disk.Len())
		}
	}
	if cfg.RateLimit > 0 {
		s.adm = newAdmission(cfg.RateLimit, cfg.RateBurst, cfg.MaxClients)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	var diskStats *store.Stats
	if s.disk != nil {
		st := s.disk.Stats()
		diskStats = &st
	}
	return Stats{
		Requests:        s.requests.Load(),
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Deduped:         s.deduped.Load(),
		Executed:        s.executed.Load(),
		Failures:        s.failures.Load(),
		LintRequests:    s.lintRequests.Load(),
		LintDiagnostics: s.lintDiagnostics.Load(),
		ShedQueue:       s.shedQueue.Load(),
		ShedRate:        s.shedRate.Load(),
		Streams:         s.streams.Load(),
		Batches:         s.batches.Load(),
		BatchItems:      s.batchItems.Load(),
		BatchItemErrors: s.batchItemErrors.Load(),
		ParallelRuns:    s.parallelRuns.Load(),
		Store:           diskStats,
		QueueDepth:      len(s.jobs),
		InFlight:        int(s.inFlightN.Load()),
		Workers:         s.cfg.Workers,
		CacheLen:        s.cache.Len(),
		CacheCap:        s.cfg.CacheSize,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		PeakInFlight:    int(s.peakInFlight.Load()),
		PeakQueueDepth:  int(s.peakQueueDepth.Load()),
		PreprocUs:       s.preprocUs.Load(),
		AnalysisUs:      s.analysisUs.Load(),
		CollectionUs:    s.collectionUs.Load(),
		Engine: EngineReport{
			Resolutions:     s.engResolutions.Load(),
			BuiltinCalls:    s.engBuiltinCalls.Load(),
			Subgoals:        s.engSubgoals.Load(),
			Answers:         s.engAnswers.Load(),
			ProducerRuns:    s.engProducerRuns.Load(),
			ProducerPasses:  s.engProducerPasses.Load(),
			TableBytes:      s.engTableBytes.Load(),
			CallBytes:       s.engCallBytes.Load(),
			AnswerBytes:     s.engAnswerBytes.Load(),
			TableNodes:      s.engTableNodes.Load(),
			PredsCompiled:   s.engPredsCompiled.Load(),
			CompileNanos:    s.engCompileNanos.Load(),
			ProvenanceBytes: s.engProvenanceBytes.Load(),
		},
	}
}

// Shutdown stops accepting requests, drains the queue (queued and
// running requests complete normally), and waits for the workers to
// exit or ctx to end, whichever is first.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.jobs) // safe: submissions are guarded by s.closed under s.mu
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Shutdown without a deadline.
func (s *Service) Close() error { return s.Shutdown(context.Background()) }

// Do runs one request through cache, single-flight, and the worker
// pool, blocking until the result is available or ctx/timeout ends.
func (s *Service) Do(ctx context.Context, req *Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { s.latency[req.Kind].Observe(time.Since(start)) }()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		// Reject everything once shutdown has begun — even requests the
		// cache could answer — so clients migrate off a draining server.
		return nil, ErrClosed
	}
	s.requests.Add(1)
	ctx, reqID := ensureRequestID(ctx)
	s.logger.Info("request accepted",
		"req", reqID, "kind", req.Kind, "source_bytes", len(req.Source))

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	key := req.CacheKey()
	if resp, ok := s.cache.Get(key); ok {
		s.hits.Add(1)
		s.logger.Info("cache hit", "req", reqID, "kind", req.Kind, "key", key[:12])
		hit := resp.shallowCopy()
		hit.Cached = true
		return hit, nil
	}
	if resp, ok := s.storeGet(key); ok {
		// Warm restart path: the disk store under the LRU has this
		// result from a previous process (or an evicted LRU entry).
		// Promote it so repeats are memory hits.
		s.hits.Add(1)
		s.cache.Add(key, resp)
		s.logger.Info("disk store hit", "req", reqID, "kind", req.Kind, "key", key[:12])
		hit := resp.shallowCopy()
		hit.Cached, hit.Stored = true, true
		return hit, nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if f, ok := s.inflight[key]; ok {
		// An identical request is already queued or running: join it.
		s.mu.Unlock()
		s.deduped.Add(1)
		s.logger.Info("joined in-flight computation", "req", reqID, "kind", req.Kind, "key", key[:12])
		resp, err := s.wait(ctx, f)
		if err != nil {
			return nil, err
		}
		resp = resp.shallowCopy()
		resp.Deduped = true
		return resp, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	j := &job{ctx: ctx, req: req, key: key, f: f}
	select {
	case s.jobs <- j:
	default:
		delete(s.inflight, key)
		s.mu.Unlock()
		f.err = ErrQueueFull
		close(f.done)
		s.shedQueue.Add(1)
		s.logger.Warn("queue full", "req", reqID, "kind", req.Kind)
		return nil, ErrQueueFull
	}
	s.mu.Unlock()
	updateMax(&s.peakQueueDepth, int64(len(s.jobs)))
	s.misses.Add(1)
	return s.wait(ctx, f)
}

// updateMax raises a high-water mark to v if v exceeds it.
func updateMax(mark *atomic.Int64, v int64) {
	for {
		cur := mark.Load()
		if v <= cur || mark.CompareAndSwap(cur, v) {
			return
		}
	}
}

// wait blocks until the flight resolves or ctx ends. The flight always
// resolves — workers drain the queue even during shutdown — so a ctx
// race near completion favors the available result.
func (s *Service) wait(ctx context.Context, f *flight) (*Response, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		select {
		case <-f.done:
		default:
			return nil, engine.CtxErr(ctx)
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return f.resp, nil
}

// worker is one pool goroutine: it owns at most one engine.Machine at a
// time (execute constructs machines that never escape the call), so the
// non-goroutine-safe engine is always confined to a single worker.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		updateMax(&s.peakInFlight, s.inFlightN.Add(1))
		resp, err := s.run(j)

		s.mu.Lock()
		delete(s.inflight, j.key)
		s.mu.Unlock()
		if err == nil {
			s.cache.Add(j.key, resp)
		}
		j.f.resp, j.f.err = resp, err
		close(j.f.done)
		// Write-through to disk after waiters are released: durability
		// work never adds latency to the request that paid for the run.
		if err == nil {
			s.storePut(j.key, resp)
		}
		s.inFlightN.Add(-1)
	}
}

// storeGet reads a response from the disk store. Any failure — store
// disabled, absent or corrupt entry, stale JSON schema — is a miss.
func (s *Service) storeGet(key string) (*Response, bool) {
	if s.disk == nil {
		return nil, false
	}
	payload, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		// The frame checksum held but the payload no longer parses as a
		// Response (e.g. written by an incompatible build): drop it like
		// any other corruption.
		s.disk.DropCorrupt(key)
		return nil, false
	}
	return &resp, true
}

// storePut persists a freshly computed response. Failures are logged,
// never surfaced: durability is best-effort under the LRU.
func (s *Service) storePut(key string, resp *Response) {
	if s.disk == nil {
		return
	}
	payload, err := json.Marshal(resp)
	if err == nil {
		err = s.disk.Put(key, payload)
	}
	if err != nil {
		s.logger.Warn("disk store write failed", "key", key[:12], "err", err)
	}
}

// Admit runs per-client admission control: it debits one token from
// client's bucket and reports whether the request may proceed, with a
// retry hint when it may not. Admission is a no-op (always true) when
// Config.RateLimit is 0. The HTTP layer calls this before decoding a
// request body; embedders driving Do directly can do the same.
func (s *Service) Admit(client string) (bool, time.Duration) {
	if s.adm == nil {
		return true, 0
	}
	ok, retry := s.adm.admit(client, time.Now())
	if !ok {
		s.shedRate.Add(1)
		s.logger.Warn("rate limited", "client", client, "retry_after", retry)
	}
	return ok, retry
}

// kindRunsEngine reports whether a kind evaluates on the tabled engine
// (and so produces tracer events for /debug/tables).
func kindRunsEngine(k Kind) bool {
	switch k {
	case KindGroundness, KindStrictness, KindDepthK, KindQuery, KindExplain:
		return true
	}
	return false
}

// run executes one job unless its context already expired in the queue.
func (s *Service) run(j *job) (*Response, error) {
	if err := engine.CtxErr(j.ctx); err != nil {
		return nil, err
	}
	s.executed.Add(1)
	reqID := RequestID(j.ctx)
	var tracer obs.EngineTracer
	if kindRunsEngine(j.req.Kind) {
		// Register the run with /debug/tables; the watch doubles as the
		// engine tracer so scrapes see the tables grow live.
		watch := s.debug.start(reqID, j.req.Kind)
		tracer = watch
		defer s.debug.finish(watch)
	}
	req := j.req
	if req.Options.Parallel == 0 && s.cfg.DefaultParallel > 0 && kindRunsEngine(req.Kind) {
		// Apply the server-wide parallelism default on a copy: the
		// caller's request (and its cache key) must not change.
		r2 := *req
		r2.Options.Parallel = s.cfg.DefaultParallel
		req = &r2
	}
	if req.Options.Parallel > 1 && kindRunsEngine(req.Kind) {
		s.parallelRuns.Add(1)
	}
	s.logger.Info("executing", "req", reqID, "kind", req.Kind, "parallel", req.Options.Parallel)
	t0 := time.Now()
	resp, err := execute(j.ctx, req, tracer)
	if err != nil {
		s.failures.Add(1)
		s.logger.Warn("execution failed",
			"req", reqID, "kind", j.req.Kind, "dur_ms", time.Since(t0).Milliseconds(), "err", err)
		return nil, err
	}
	s.preprocUs.Add(resp.Timings.PreprocUs)
	s.analysisUs.Add(resp.Timings.AnalysisUs)
	s.collectionUs.Add(resp.Timings.CollectionUs)
	done := []any{"req", reqID, "kind", j.req.Kind, "dur_ms", time.Since(t0).Milliseconds()}
	if e := resp.Engine; e != nil {
		s.engResolutions.Add(e.Resolutions)
		s.engBuiltinCalls.Add(e.BuiltinCalls)
		s.engSubgoals.Add(e.Subgoals)
		s.engAnswers.Add(e.Answers)
		s.engProducerRuns.Add(e.ProducerRuns)
		s.engProducerPasses.Add(e.ProducerPasses)
		s.engTableBytes.Add(e.TableBytes)
		s.engCallBytes.Add(e.CallBytes)
		s.engAnswerBytes.Add(e.AnswerBytes)
		s.engTableNodes.Add(e.TableNodes)
		s.engPredsCompiled.Add(e.PredsCompiled)
		s.engCompileNanos.Add(e.CompileNanos)
		s.engProvenanceBytes.Add(e.ProvenanceBytes)
		done = append(done,
			"resolutions", e.Resolutions, "subgoals", e.Subgoals,
			"answers", e.Answers, "table_bytes", e.TableBytes)
	}
	if j.req.Kind == KindLint || (j.req.Options.Lint && j.req.Kind != KindQuery) {
		s.lintRequests.Add(1)
		s.lintDiagnostics.Add(uint64(len(resp.Diagnostics)))
	}
	s.logger.Info("executed", done...)
	return resp, nil
}

// execute dispatches a validated request to its analyzer under ctx.
// tracer, when non-nil, is installed on the engine behind tabled kinds
// (the /debug/tables live watch).
func execute(ctx context.Context, req *Request, tracer obs.EngineTracer) (*Response, error) {
	o := req.Options
	var resp *Response
	switch req.Kind {
	case KindGroundness:
		a, err := prop.Analyze(req.Source, prop.Options{
			Mode:     o.engineMode(),
			Tables:   o.engineTables(),
			Entry:    o.Entry,
			Slice:    o.Slice,
			Limits:   o.engineLimits(),
			Parallel: o.Parallel,
			Ctx:      ctx,
			Tracer:   tracer,
		})
		if err != nil {
			return nil, err
		}
		resp = FromGroundness(a)
	case KindGAIA:
		a, err := gaia.AnalyzeEntries(ctx, req.Source, o.Entry)
		if err != nil {
			return nil, err
		}
		resp = FromGAIA(a)
	case KindBDD:
		a, err := bddprop.AnalyzeCtx(ctx, req.Source)
		if err != nil {
			return nil, err
		}
		resp = FromBDD(a)
	case KindStrictness:
		a, err := strict.Analyze(req.Source, strict.Options{
			Mode:            o.engineMode(),
			Tables:          o.engineTables(),
			Entry:           o.Entry,
			Slice:           o.Slice,
			Limits:          o.engineLimits(),
			Parallel:        o.Parallel,
			NoSupplementary: o.NoSupplementary,
			Ctx:             ctx,
			Tracer:          tracer,
		})
		if err != nil {
			return nil, err
		}
		resp = FromStrictness(a)
	case KindDepthK:
		a, err := depthk.Analyze(req.Source, depthk.Options{
			K:               o.K,
			Mode:            o.engineMode(),
			Tables:          o.engineTables(),
			Entry:           o.Entry,
			Slice:           o.Slice,
			Limits:          o.engineLimits(),
			Parallel:        o.Parallel,
			NoSupplementary: o.NoSupplementary,
			Ctx:             ctx,
			Tracer:          tracer,
		})
		if err != nil {
			return nil, err
		}
		resp = FromDepthK(a)
	case KindQuery:
		return executeQuery(ctx, req, tracer)
	case KindExplain:
		return executeExplain(ctx, req, tracer)
	case KindLint:
		t0 := time.Now()
		resp = FromLint(runLint(req.Source, req.canonicalOptions()))
		us := time.Since(t0).Microseconds()
		resp.Timings = Timings{AnalysisUs: us, TotalUs: us}
		return resp, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, req.Kind)
	}
	if o.Lint {
		attachLint(resp, req)
	}
	return resp, nil
}

// executeExplain runs a provenance-enabled analysis (groundness, or
// strictness when options.lang is "fl") and returns the justification
// DAG of the requested predicate's recorded answers.
func executeExplain(ctx context.Context, req *Request, tracer obs.EngineTracer) (*Response, error) {
	o := req.Options
	var explain func(pred string, maxNodes int) (*obs.Derivation, error)
	var preds []string
	resp := &Response{Kind: KindExplain}
	if o.Lang == "fl" {
		a, err := strict.Analyze(req.Source, strict.Options{
			Mode:       o.engineMode(),
			Tables:     o.engineTables(),
			Entry:      o.Entry,
			Limits:     o.engineLimits(),
			Ctx:        ctx,
			Tracer:     tracer,
			Provenance: true,
		})
		if err != nil {
			return nil, err
		}
		explain = a.Explain
		preds = sortedPreds(a.SpPreds)
		resp.Timings = analysisTimings(a.PreprocTime, a.AnalysisTime, a.CollectionTime)
		resp.TableBytes = a.TableBytes
		resp.Engine = engineReport(a.EngineStats)
	} else {
		a, err := prop.Analyze(req.Source, prop.Options{
			Mode:       o.engineMode(),
			Tables:     o.engineTables(),
			Entry:      o.Entry,
			Limits:     o.engineLimits(),
			Ctx:        ctx,
			Tracer:     tracer,
			Provenance: true,
		})
		if err != nil {
			return nil, err
		}
		explain = a.Explain
		preds = sortedPreds(a.AbsPreds)
		resp.Timings = analysisTimings(a.PreprocTime, a.AnalysisTime, a.CollectionTime)
		resp.TableBytes = a.TableBytes
		resp.Engine = engineReport(a.EngineStats)
	}

	if o.Pred != "" {
		d, err := explain(o.Pred, o.MaxNodes)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		resp.Derivation = d
		return resp, nil
	}
	// No predicate requested: explain the first one (in indicator
	// order) that recorded any answer.
	for _, p := range preds {
		d, err := explain(p, o.MaxNodes)
		if err != nil {
			return nil, err
		}
		if len(d.Roots) > 0 {
			resp.Derivation = d
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w: no predicate recorded any answer", ErrBadRequest)
}

// sortedPreds returns the source indicators of an analysis' predicate
// map in order.
func sortedPreds(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// analysisTimings folds an analysis' phase durations to wire form.
func analysisTimings(preproc, analysis, collection time.Duration) Timings {
	return Timings{
		PreprocUs:    preproc.Microseconds(),
		AnalysisUs:   analysis.Microseconds(),
		CollectionUs: collection.Microseconds(),
		TotalUs:      (preproc + analysis + collection).Microseconds(),
	}
}

// executeQuery consults the program on a fresh machine and runs the
// goal, returning every solution in derivation order.
func executeQuery(ctx context.Context, req *Request, tracer obs.EngineTracer) (*Response, error) {
	o := req.Options
	t0 := time.Now()
	m := engine.New()
	m.Mode = o.engineMode()
	m.Tables = o.engineTables()
	m.Limits = o.engineLimits()
	m.SetContext(ctx)
	m.SetTracer(tracer)
	if err := m.Consult(req.Source); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if len(o.Table) > 0 {
		m.Table(o.Table...)
	}
	preproc := time.Since(t0)

	t1 := time.Now()
	sols, err := m.Query(o.Goal)
	if err != nil {
		return nil, err
	}
	analysis := time.Since(t1)

	resp := &Response{
		Kind: KindQuery,
		Timings: Timings{
			PreprocUs:  preproc.Microseconds(),
			AnalysisUs: analysis.Microseconds(),
			TotalUs:    (preproc + analysis).Microseconds(),
		},
		TableBytes: m.TableSpace(),
		Engine:     engineReport(m.Stats()),
		Solutions:  make([]string, 0, len(sols)),
	}
	for _, t := range sols {
		resp.Solutions = append(resp.Solutions, t.String())
	}
	return resp, nil
}
