package service

import (
	"net/http"
	"time"

	"xlp/internal/obs"
	"xlp/internal/term"
)

// routePatterns lists every HTTP route the handler serves, in the mux's
// pattern syntax. Histograms are keyed by these strings (fixed at
// registration) rather than by the request URL, so label cardinality is
// bounded no matter what clients send.
var routePatterns = []string{
	"POST /v1/analyze/{kind}",
	"POST /v1/lint",
	"POST /v1/query",
	"POST /v1/explain",
	"POST /v1/batch",
	"GET /v1/stats",
	"GET /debug/tables",
	"GET /metrics",
}

// timed wraps an HTTP handler with the per-route latency histogram.
func (s *Service) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.routes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// handleMetrics serves Prometheus text exposition format 0.0.4 from the
// service counters, histograms, and engine aggregates.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.Stats()
	info := obs.Build(s.cfg.Version)

	pw := obs.NewPromWriter(w)
	pw.Gauge("xlpd_build_info", "Build metadata (value is always 1).", 1,
		"version", info.Version, "goversion", info.GoVersion, "revision", info.Revision)

	pw.Counter("xlpd_requests_total", "Accepted requests (past validation).", float64(st.Requests))
	pw.Counter("xlpd_cache_hits_total", "Requests served from the result cache.", float64(st.Hits))
	pw.Counter("xlpd_cache_misses_total", "Requests that led a fresh computation.", float64(st.Misses))
	pw.Counter("xlpd_deduped_total", "Requests that joined an identical in-flight computation.", float64(st.Deduped))
	pw.Counter("xlpd_executed_total", "Analyses actually run by workers.", float64(st.Executed))
	pw.Counter("xlpd_failures_total", "Executions that returned an error.", float64(st.Failures))
	pw.Counter("xlpd_lint_requests_total", "Executed requests that ran the linter.", float64(st.LintRequests))
	pw.Counter("xlpd_lint_diagnostics_total", "Diagnostics produced by executed lint runs.", float64(st.LintDiagnostics))

	pw.Counter("xlpd_shed_total", "Requests shed with 429 + Retry-After, by reason.",
		float64(st.ShedQueue), "reason", "queue")
	pw.Counter("xlpd_shed_total", "Requests shed with 429 + Retry-After, by reason.",
		float64(st.ShedRate), "reason", "rate")
	pw.Counter("xlpd_streams_total", "Responses delivered incrementally (JSON lines or SSE).", float64(st.Streams))
	pw.Counter("xlpd_batch_requests_total", "Accepted /v1/batch requests.", float64(st.Batches))
	pw.Counter("xlpd_batch_items_total", "Programs submitted through /v1/batch.", float64(st.BatchItems))
	pw.Counter("xlpd_batch_item_errors_total", "Batch items that failed (batches themselves never fail on item errors).", float64(st.BatchItemErrors))
	pw.Counter("xlpd_parallel_runs_total", "Executed analyses eligible for intra-query parallel evaluation (effective parallelism > 1).", float64(st.ParallelRuns))
	pw.Gauge("xlpd_parallel_default", "Server-wide default intra-query parallelism (xlpd -parallel).", float64(s.cfg.DefaultParallel))
	if st.Store != nil {
		pw.Counter("xlpd_store_hits_total", "Requests served from the disk-backed result store.", float64(st.Store.Hits))
		pw.Counter("xlpd_store_misses_total", "Disk store lookups that found no usable entry.", float64(st.Store.Misses))
		pw.Counter("xlpd_store_writes_total", "Results persisted to the disk store.", float64(st.Store.Writes))
		pw.Counter("xlpd_store_corrupt_total", "Disk store entries dropped as unreadable.", float64(st.Store.Corrupt))
		pw.Counter("xlpd_store_evicted_total", "Disk store entries removed by the size cap.", float64(st.Store.Evicted))
		pw.Gauge("xlpd_store_entries", "Entries currently in the disk store.", float64(st.Store.Entries))
	}

	pw.Gauge("xlpd_queue_depth", "Requests queued but not yet picked up.", float64(st.QueueDepth))
	pw.Gauge("xlpd_in_flight", "Requests currently executing.", float64(st.InFlight))
	pw.Gauge("xlpd_workers", "Worker-pool size.", float64(st.Workers))
	pw.Gauge("xlpd_cache_entries", "Result-cache entries.", float64(st.CacheLen))
	pw.Gauge("xlpd_cache_capacity", "Result-cache capacity.", float64(st.CacheCap))
	pw.Gauge("xlpd_uptime_seconds", "Seconds since the service started.", st.UptimeSeconds)
	pw.Gauge("xlpd_in_flight_peak", "High-water mark of concurrently executing requests.", float64(st.PeakInFlight))
	pw.Gauge("xlpd_queue_depth_peak", "High-water mark of the request queue depth.", float64(st.PeakQueueDepth))

	phase := func(name string, us int64) {
		pw.Counter("xlpd_phase_seconds_total",
			"Cumulative analysis phase time over executed runs.",
			float64(us)/1e6, "phase", name)
	}
	phase("preproc", st.PreprocUs)
	phase("analysis", st.AnalysisUs)
	phase("collection", st.CollectionUs)

	eng := func(name, help string, v int64) {
		pw.Counter("xlpd_engine_"+name, help, float64(v))
	}
	eng("resolutions_total", "Clause head unification attempts across executed runs.", st.Engine.Resolutions)
	eng("builtin_calls_total", "Builtin calls across executed runs.", st.Engine.BuiltinCalls)
	eng("subgoals_total", "Distinct tabled subgoals across executed runs.", st.Engine.Subgoals)
	eng("answers_total", "Distinct tabled answers across executed runs.", st.Engine.Answers)
	eng("producer_runs_total", "Producer (re-)activations across executed runs.", st.Engine.ProducerRuns)
	eng("producer_passes_total", "Full producer clause passes across executed runs.", st.Engine.ProducerPasses)
	eng("table_bytes_total", "Table space bytes across executed runs.", st.Engine.TableBytes)
	eng("call_bytes_total", "Table space charged to call-table keys across executed runs.", st.Engine.CallBytes)
	eng("answer_bytes_total", "Table space charged to answer-table keys across executed runs.", st.Engine.AnswerBytes)
	eng("table_nodes_total", "Table-trie nodes allocated across executed runs.", st.Engine.TableNodes)
	eng("provenance_bytes_total", "Space charged to justification records across executed runs.", st.Engine.ProvenanceBytes)
	pw.Counter("xlpd_preds_compiled_total",
		"Predicates translated to closure code across executed runs (ModeClosure).",
		float64(st.Engine.PredsCompiled))
	pw.Counter("xlpd_compile_seconds_total",
		"Time spent translating predicates to closure code across executed runs.",
		float64(st.Engine.CompileNanos)/1e9)
	pw.Gauge("xlpd_interned_symbols", "Interned atom/functor symbols in the process-wide table.", float64(term.InternedSyms()))

	for _, k := range Kinds() {
		pw.Histogram("xlpd_request_duration_seconds",
			"Request latency through cache, dedup, and execution.",
			s.latency[k], "kind", string(k))
	}
	for _, route := range routePatterns {
		pw.Histogram("xlpd_http_request_duration_seconds",
			"HTTP handler latency by route pattern.",
			s.routes[route], "route", route)
	}
}
