package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzStoreDecode drives the on-disk entry codec with arbitrary bytes.
// The contract under attack: Decode never panics, every malformed
// input is classified as ErrCorrupt (a miss), and every accepted input
// decodes to exactly the payload its frame committed to — a truncated
// or bit-flipped entry must never be reported as a (different) result.
func FuzzStoreDecode(f *testing.F) {
	// Well-formed frames over representative payloads.
	for _, payload := range [][]byte{
		{},
		[]byte("x"),
		[]byte(`{"kind":"groundness","cached":false,"timings":{"preproc_us":1,"analysis_us":2,"collection_us":0,"total_us":3}}`),
		[]byte(`{"kind":"strictness","functions":[{"indicator":"app/3","arity":3,"strict_args":[true,false,true]}]}`),
		bytes.Repeat([]byte{0x00}, 256),
	} {
		f.Add(Encode(payload))
	}
	// Malformed variants: truncations, padding, header and payload flips.
	base := Encode([]byte(`{"kind":"query","solutions":["p(a)","p(b)"]}`))
	f.Add(base[:8])
	f.Add(base[:headerSize])
	f.Add(base[:len(base)-3])
	f.Add(append(append([]byte{}, base...), 0xde, 0xad))
	flip := func(i int) []byte { c := append([]byte{}, base...); c[i] ^= 0x80; return c }
	f.Add(flip(0))             // magic
	f.Add(flip(8))             // version
	f.Add(flip(12))            // length field
	f.Add(flip(20))            // checksum
	f.Add(flip(len(base) - 1)) // payload
	f.Add([]byte("xlpstore"))  // magic only
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error outside ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted: the frame must be exactly the canonical encoding of
		// the payload it yielded (no malleability — a tampered frame that
		// still decodes would re-encode differently).
		if re := Encode(payload); !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical: %d byte frame, re-encodes to %d bytes", len(data), len(re))
		}
	})
}
