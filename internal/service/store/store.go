// Package store is the disk-backed, content-addressed result store
// that sits under the service's in-memory LRU. Entries are keyed by
// the service's SHA-256 request keys (hex), so a result written by one
// process is valid for any later process given the same request: the
// key already covers kind, canonicalized options, and source.
//
// Durability discipline:
//
//   - writes go to a temp file in the target directory and are
//     published with os.Rename, so readers only ever see complete
//     entries (atomic on POSIX within one filesystem);
//   - the on-disk format is versioned and checksummed (see Encode);
//     any entry that fails validation — truncated, bit-flipped, wrong
//     version, stray file — is a cache miss, never an error, and is
//     deleted so it cannot be re-read;
//   - keys are validated as 64 lowercase hex characters before they
//     touch the filesystem, so a hostile key cannot escape the store
//     directory.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Entry format v1, in order:
//
//	offset 0:  8-byte magic "xlpstore"
//	offset 8:  1-byte format version (1)
//	offset 9:  8-byte big-endian payload length
//	offset 17: 32-byte SHA-256 of the payload
//	offset 49: payload (the service's JSON-encoded Response)
const (
	magic      = "xlpstore"
	version    = 1
	headerSize = len(magic) + 1 + 8 + sha256.Size
	// maxPayload bounds the length field during decode so a corrupt
	// header cannot drive a giant allocation.
	maxPayload = 1 << 30
)

// ErrCorrupt reports an entry that failed structural validation.
// Callers inside the store treat it as a miss; it is exported so fuzz
// and unit tests can assert the failure class.
var ErrCorrupt = errors.New("store: corrupt entry")

// Encode frames a payload in on-disk entry format v1.
func Encode(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out, magic)
	out[len(magic)] = version
	binary.BigEndian.PutUint64(out[len(magic)+1:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[len(magic)+9:], sum[:])
	copy(out[headerSize:], payload)
	return out
}

// Decode validates a framed entry and returns its payload. Every
// failure wraps ErrCorrupt: a truncated, padded, bit-flipped, or
// wrong-version entry must read as "not stored", never as data.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d header bytes", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := data[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, v)
	}
	n := binary.BigEndian.Uint64(data[len(magic)+1:])
	if n > maxPayload || int(n) != len(data)-headerSize {
		return nil, fmt.Errorf("%w: length field %d does not match %d payload bytes", ErrCorrupt, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(magic)+9:headerSize]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Entries int64  `json:"entries"` // entries currently on disk
	Hits    uint64 `json:"hits"`    // Get found a valid entry
	Misses  uint64 `json:"misses"`  // Get found nothing usable
	Writes  uint64 `json:"writes"`  // entries published by Put
	Corrupt uint64 `json:"corrupt"` // entries dropped as unreadable
	Evicted uint64 `json:"evicted"` // entries removed by the size cap
}

// Store is a content-addressed entry store rooted at one directory.
// Entries live at dir/<key[:2]>/<key> (256-way fan-out keeps directory
// listings short at large entry counts). All methods are safe for
// concurrent use.
type Store struct {
	dir        string
	maxEntries int

	entries                                atomic.Int64
	hits, misses, writes, corrupt, evicted atomic.Uint64

	// pubMu serializes the existence check against the rename/remove
	// that changes it, so the entry count stays exact when concurrent
	// Puts publish the same fresh key (or a Put races a corrupt-drop).
	// Only the cheap stat+rename runs under it; temp-file writes stay
	// concurrent.
	pubMu   sync.Mutex
	sweepMu sync.Mutex // serializes size-cap sweeps
}

// Open roots a store at dir, creating it if needed and counting the
// entries already present (the warm-across-restart inventory).
// maxEntries caps the store size; 0 means unlimited.
func Open(dir string, maxEntries int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, maxEntries: maxEntries}
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && validKey(d.Name()) {
			n++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: inventory walk: %w", err)
	}
	s.entries.Store(int64(n))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the current entry count.
func (s *Store) Len() int { return int(s.entries.Load()) }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Entries: s.entries.Load(),
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
		Evicted: s.evicted.Load(),
	}
}

// validKey reports whether key is exactly 64 lowercase hex characters
// (a SHA-256 in the service's CacheKey encoding). Anything else never
// touches the filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the stored payload for key. Every failure mode —
// invalid key, absent entry, unreadable file, failed validation — is
// a miss; corrupt files are additionally deleted and counted.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := Decode(data)
	if err != nil {
		s.dropCorrupt(key)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// DropCorrupt removes key's entry as unreadable and counts it. The
// store exposes it for callers that validate the payload further
// (e.g. the service's JSON decode) and hit schema-level corruption.
func (s *Store) DropCorrupt(key string) {
	if validKey(key) {
		s.dropCorrupt(key)
	}
}

func (s *Store) dropCorrupt(key string) {
	s.corrupt.Add(1)
	s.pubMu.Lock()
	if os.Remove(s.path(key)) == nil {
		s.entries.Add(-1)
	}
	s.pubMu.Unlock()
}

// Put frames payload and publishes it under key via write-to-temp +
// rename, so concurrent readers only ever observe complete entries.
// Overwriting an existing key is allowed and idempotent.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	final := s.path(key)
	shard := filepath.Dir(final)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(Encode(payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.pubMu.Lock()
	_, statErr := os.Stat(final)
	fresh := errors.Is(statErr, fs.ErrNotExist)
	if err := os.Rename(tmp.Name(), final); err != nil {
		s.pubMu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	if fresh {
		s.entries.Add(1)
	}
	s.pubMu.Unlock()
	s.writes.Add(1)
	if s.maxEntries > 0 && int(s.entries.Load()) > s.maxEntries {
		s.sweep()
	}
	return nil
}

// sweep brings the store back under maxEntries by deleting the oldest
// entries (by modification time) down to 90% of the cap, so Put is not
// sweeping on every call at the boundary.
func (s *Store) sweep() {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	target := s.maxEntries * 9 / 10
	if int(s.entries.Load()) <= s.maxEntries {
		return // another Put already swept
	}
	type entry struct {
		path string
		mod  int64
	}
	var all []entry
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error { //nolint:errcheck
		if err != nil || d.IsDir() || !validKey(d.Name()) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		all = append(all, entry{path, info.ModTime().UnixNano()})
		return nil
	})
	sort.Slice(all, func(i, j int) bool { return all[i].mod < all[j].mod })
	for i := 0; i < len(all) && len(all)-i > target; i++ {
		s.pubMu.Lock()
		if os.Remove(all[i].path) == nil {
			s.entries.Add(-1)
			s.evicted.Add(1)
		}
		s.pubMu.Unlock()
	}
}
