package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// key returns a deterministic valid store key.
func key(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"kind":"groundness","predicates":[{"indicator":"app/3"}]}`),
		bytes.Repeat([]byte{0xff, 0x00}, 4096),
	} {
		framed := Encode(payload)
		got, err := Decode(framed)
		if err != nil {
			t.Fatalf("Decode(Encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload round trip mismatch: %d bytes in, %d out", len(payload), len(got))
		}
		// Encoding is deterministic, so decode∘encode must be identity on
		// the framed form too.
		if again := Encode(got); !bytes.Equal(again, framed) {
			t.Fatal("Encode not deterministic over round-tripped payload")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	framed := Encode([]byte(`{"kind":"lint"}`))
	cases := map[string][]byte{
		"empty":         {},
		"short":         framed[:headerSize-1],
		"truncated":     framed[:len(framed)-1],
		"padded":        append(append([]byte{}, framed...), 'x'),
		"bad magic":     append([]byte("notstore"), framed[8:]...),
		"future ver":    func() []byte { c := append([]byte{}, framed...); c[8] = 99; return c }(),
		"flip header":   func() []byte { c := append([]byte{}, framed...); c[12] ^= 0x10; return c }(),
		"flip checksum": func() []byte { c := append([]byte{}, framed...); c[20] ^= 0x01; return c }(),
		"flip payload":  func() []byte { c := append([]byte{}, framed...); c[len(c)-1] ^= 0x01; return c }(),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key("req-1")
	payload := []byte(`{"kind":"groundness"}`)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit before Put")
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put: ok=%v payload=%q", ok, got)
	}

	// Reopen on the same directory: the entry survives and is counted.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store Len = %d, want 1", s2.Len())
	}
	got, ok = s2.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after reopen: ok=%v payload=%q", ok, got)
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

func TestCorruptEntryIsMissAndDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key("req-corrupt")
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k[:2], k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry not deleted")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats after corruption = %+v", st)
	}
	// A second Get is a plain miss, not another corruption.
	if _, ok := s.Get(k); ok {
		t.Fatal("deleted entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corruption double-counted: %+v", st)
	}
}

func TestInvalidKeys(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"",
		"short",
		strings.Repeat("g", 64),                  // non-hex
		strings.ToUpper(key("x")),                // uppercase hex
		"../../../../etc/passwd" + key("x")[:41], // traversal, right length
		key("x")[:63] + "/",                      // separator
		strings.Repeat("a", 63) + string(rune(0)), // NUL
		strings.Repeat("a", 62) + "é",             // multibyte, 64 bytes
	} {
		if err := s.Put(k, []byte("p")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit on an invalid key", k)
		}
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("invalid keys created %d entries", got)
	}
}

func TestOverwriteIdempotent(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key("req-overwrite")
	for i := 0; i < 3; i++ {
		if err := s.Put(k, []byte("same result")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("overwrites inflated Len to %d", s.Len())
	}
}

func TestSweepEnforcesCap(t *testing.T) {
	s, err := Open(t.TempDir(), 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Put(key(fmt.Sprintf("req-%d", i)), []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n > 20 {
		t.Fatalf("cap 20 exceeded: %d entries", n)
	}
	if st := s.Stats(); st.Evicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("req-%d", i%10))
				payload := []byte(fmt.Sprintf(`{"i":%d}`, i%10))
				if err := s.Put(k, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok := s.Get(k)
				if !ok {
					t.Error("miss right after Put")
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
}

func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("stray file counted as entry: Len = %d", s.Len())
	}
}
