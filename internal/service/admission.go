package service

import (
	"container/list"
	"net"
	"net/http"
	"sync"
	"time"
)

// ClientIDHeader identifies the calling client for admission control;
// requests without it fall back to the remote address's host.
const ClientIDHeader = "X-Client-ID"

// ClientID resolves the admission-control identity of an HTTP request:
// the X-Client-ID header when present, else the remote host (port
// stripped, so one client's ephemeral ports share a bucket).
func ClientID(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admission is a per-client token-bucket admission controller. Each
// client owns a bucket of capacity burst refilled at rate tokens per
// second; a request debits one token and is shed when none remain.
// Client state is bounded: the least-recently-seen client is evicted
// past maxClients, so a rotating client population (or an attacker
// minting IDs) cannot grow memory without bound.
type admission struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	max   int     // client-state bound

	mu      sync.Mutex
	clients map[string]*list.Element
	order   *list.List // front = most recently seen
}

// clientBucket is one client's token bucket; tokens are refilled
// lazily from the elapsed time since the last request.
type clientBucket struct {
	id     string
	tokens float64
	last   time.Time
}

func newAdmission(rate float64, burst, maxClients int) *admission {
	return &admission{
		rate:    rate,
		burst:   float64(burst),
		max:     maxClients,
		clients: map[string]*list.Element{},
		order:   list.New(),
	}
}

// admit debits one token from client's bucket at time now, reporting
// whether the request proceeds and, when shed, how long until a token
// is available again.
func (a *admission) admit(client string, now time.Time) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()

	el, ok := a.clients[client]
	if !ok {
		// New clients start with a full bucket (minus this request).
		b := &clientBucket{id: client, tokens: a.burst - 1, last: now}
		a.clients[client] = a.order.PushFront(b)
		for a.order.Len() > a.max {
			oldest := a.order.Back()
			a.order.Remove(oldest)
			delete(a.clients, oldest.Value.(*clientBucket).id)
		}
		return true, 0
	}
	a.order.MoveToFront(el)
	b := el.Value.(*clientBucket)
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Time until the deficit refills to one whole token.
	retry := time.Duration((1 - b.tokens) / a.rate * float64(time.Second))
	return false, retry
}

// len returns the tracked-client count (tests).
func (a *admission) len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.order.Len()
}
