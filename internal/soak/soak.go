// Package soak drives the analysis service the way sustained production
// load does: many clients hammering a mixed diet of generated programs
// (every randgen shape, including the Genaim/Howe/Codish worst-case
// groundness families), limit-tripping and divergent requests, streamed
// and buffered transports, randomized client cancellation, and daemon
// kill/restart injection over one shared disk store — then it audits the
// wreckage. The soak passes only if every observed outcome is a
// sentinel one (2xx, or the expected 422/504/429-with-Retry-After
// classes), restarted daemons serve repeated requests warm from the
// disk store, and tail latency stays under the configured SLO. The
// test wrapper (TestSoakSmoke) adds goroutine-leak and heap-growth
// assertions around Run.
package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xlp/internal/randgen"
	"xlp/internal/service"
)

// Config sizes a soak run. Zero fields take defaults.
type Config struct {
	// Requests is the mixed-phase request count (default 2000).
	Requests int
	// Concurrency is the client goroutine count (default 8x GOMAXPROCS).
	Concurrency int
	// Restarts is how many times the daemon is killed and restarted on
	// the same store directory during the mixed phase (default 3).
	Restarts int
	// CancelEvery injects a client-side cancellation on every Nth
	// request (default 17; 0 disables injection).
	CancelEvery int
	// Seed makes the probe schedule reproducible.
	Seed int64
	// StoreDir roots the disk store shared across restarts (required).
	StoreDir string
	// P99SLO bounds the 99th-percentile latency of successful requests
	// (default 5s — generous, the gate is for regressions measured in
	// multiples, not milliseconds).
	P99SLO time.Duration
	// WarmHitRatio is the required fraction of previously succeeded
	// requests a restarted daemon must serve from the disk store
	// (default 0.9).
	WarmHitRatio float64
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8 * runtime.GOMAXPROCS(0)
	}
	if c.Restarts <= 0 {
		c.Restarts = 3
	}
	if c.CancelEvery == 0 {
		c.CancelEvery = 17
	}
	if c.P99SLO <= 0 {
		c.P99SLO = 5 * time.Second
	}
	if c.WarmHitRatio <= 0 {
		c.WarmHitRatio = 0.9
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Result is the audited outcome of a soak run.
type Result struct {
	Requests int // mixed-phase requests issued
	Restarts int // kill/restart injections performed

	// Outcome classes. The mixed phase contributes exactly Requests
	// outcomes across them; the admission shed probe adds its 429s to
	// ShedRate on top.
	OK        int // 2xx
	Limit     int // 422 on a limit-tripping or malformed probe
	Deadline  int // 504 on a divergent probe with a tight timeout
	ShedQueue int // 429, queue full (Retry-After verified)
	ShedRate  int // 429, admission rate (Retry-After verified)
	Canceled  int // injected client cancellation won the race

	// Stored/Cached/Deduped break down the OK responses by how they
	// were served.
	Stored, Cached, Deduped int

	// Unexpected lists non-sentinel outcomes (capped). Empty on a
	// passing run.
	Unexpected []string

	// P99 is the 99th-percentile latency over successful requests.
	P99 time.Duration

	// Warm-phase audit: of WarmUnique previously succeeded unique
	// requests replayed against a freshly restarted daemon, WarmStored
	// came back flagged as disk-store hits.
	WarmUnique, WarmStored int

	// Stats is the final /v1/stats snapshot of the warm daemon.
	Stats service.Stats
}

// WarmRatio is the fraction of replayed requests served from the store.
func (r *Result) WarmRatio() float64 {
	if r.WarmUnique == 0 {
		return 0
	}
	return float64(r.WarmStored) / float64(r.WarmUnique)
}

// Err folds the run's acceptance criteria into one error.
func (r *Result) Err(cfg Config) error {
	cfg = cfg.withDefaults()
	var problems []string
	if len(r.Unexpected) > 0 {
		problems = append(problems, fmt.Sprintf("%d non-sentinel outcomes, first: %s",
			len(r.Unexpected), r.Unexpected[0]))
	}
	if r.P99 > cfg.P99SLO {
		problems = append(problems, fmt.Sprintf("p99 %v over SLO %v", r.P99, cfg.P99SLO))
	}
	if r.WarmRatio() < cfg.WarmHitRatio {
		problems = append(problems, fmt.Sprintf("warm store hits %d/%d (%.0f%%) under the %.0f%% floor",
			r.WarmStored, r.WarmUnique, 100*r.WarmRatio(), 100*cfg.WarmHitRatio))
	}
	if r.ShedRate == 0 {
		problems = append(problems, "admission control never shed (probe did not bite)")
	}
	if len(problems) > 0 {
		return errors.New("soak: " + strings.Join(problems, "; "))
	}
	return nil
}

// probe is one request template with its expected outcome class.
type probe struct {
	name   string
	kind   service.Kind
	path   string
	body   apiBody
	class  string // "ok", "limit", "deadline", "batch"
	stream bool
	warm   bool // replayed in the warm phase when it succeeded

	// batch items (class "batch"); sent as {"items": ..., "parallel": ...}
	// instead of body.
	batch         []batchProbeItem
	batchParallel int
}

// batchProbeItem is one /v1/batch item template. expectErr marks items
// that must fail (their failure is the probe's point); it is not
// marshaled.
type batchProbeItem struct {
	Kind    service.Kind    `json:"kind"`
	Source  string          `json:"source"`
	Options service.Options `json:"options"`

	expectErr bool
}

// key is the probe's service-side content address. Distinct probes can
// legitimately collide (two generator seeds can emit byte-identical
// programs); the warm audit dedupes on this.
func (p probe) key() string {
	return (&service.Request{Kind: p.kind, Source: p.body.Source, Options: p.body.Options}).CacheKey()
}

// apiBody mirrors the service's HTTP request body.
type apiBody struct {
	Source    string          `json:"source"`
	Options   service.Options `json:"options"`
	TimeoutMs int             `json:"timeout_ms,omitempty"`
}

// divergentSrc backtracks effectively forever at constant depth without
// tripping any resource limit — the deadline probe's fuel.
const divergentSrc = `
p(0). p(1). p(2). p(3).
slow :- p(A1),p(A2),p(A3),p(A4),p(A5),p(A6),p(A7),p(A8),
        p(B1),p(B2),p(B3),p(B4),p(B5),p(B6),p(B7),p(B8),
        A1 = A2, B1 = B2, fail.
`

// buildProbes assembles the mixed-load corpus: every generator shape
// (worst-case families at elevated size), every transport, and the
// failure classes the service is specified to map to sentinels.
func buildProbes() []probe {
	var ps []probe
	analyzeReq := func(shape randgen.Shape, seed int64, cfg randgen.Config) probe {
		cfg.Shape, cfg.Seed = shape, seed
		g := randgen.Generate(cfg)
		path, kind := "/v1/analyze/groundness", "groundness"
		if g.Lang == randgen.LangFL {
			path, kind = "/v1/analyze/strictness", "strictness"
		}
		return probe{
			name:  fmt.Sprintf("%s-%s-%d", kind, shape, seed),
			kind:  service.Kind(kind),
			path:  path,
			body:  apiBody{Source: g.Source},
			class: "ok",
			warm:  true,
		}
	}
	for _, shape := range randgen.Shapes() {
		for seed := int64(0); seed < 4; seed++ {
			ps = append(ps, analyzeReq(shape, seed, randgen.Config{}))
		}
	}
	// Worst-case Def/Pos at elevated chain length: the boolean-blowup
	// stress the families were built for.
	for _, shape := range []randgen.Shape{randgen.WorstDef, randgen.WorstPos} {
		for seed := int64(10); seed < 14; seed++ {
			ps = append(ps, analyzeReq(shape, seed, randgen.Config{Preds: 6}))
		}
	}
	// Streamed query with a wide answer set.
	var facts strings.Builder
	for i := 0; i < 48; i++ {
		fmt.Fprintf(&facts, "d(%d).\n", i)
	}
	ps = append(ps,
		probe{
			name: "query-stream", kind: service.KindQuery, path: "/v1/query",
			class: "ok", stream: true, warm: true,
			body: apiBody{Source: facts.String(), Options: service.Options{Goal: "d(X)", Stream: true}},
		},
		probe{
			name: "lint", kind: service.KindLint, path: "/v1/lint", class: "ok", warm: true,
			body: apiBody{Source: "ap([], L, L).\nap([H|T], L, [H|R]) :- ap(T, L, R)."},
		},
		probe{
			name: "bdd", kind: service.KindBDD, path: "/v1/analyze/bdd", class: "ok", warm: true,
			body: apiBody{Source: "ap([], L, L).\nap([H|T], L, [H|R]) :- ap(T, L, R)."},
		},
		// Limit-tripping: an infinite tabled generator under MaxAnswers
		// must surface ErrAnswerLimit (422), never hang or crash.
		probe{
			name: "answer-limit", path: "/v1/query", class: "limit",
			body: apiBody{
				Source:  ":- table n/1.\nn(z).\nn(s(X)) :- n(X).",
				Options: service.Options{Goal: "n(X)", MaxAnswers: 5},
			},
		},
		// Malformed program: a parse failure is a 422 sentinel too.
		probe{
			name: "parse-error", path: "/v1/analyze/groundness", class: "limit",
			body: apiBody{Source: "a :- ."},
		},
		// Divergent under a tight deadline: 504 within the budget.
		probe{
			name: "deadline", path: "/v1/query", class: "deadline",
			body: apiBody{Source: divergentSrc, Options: service.Options{Goal: "slow"}, TimeoutMs: 25},
		},
	)
	// Parallel evaluation probes: the same analyses with intra-query
	// parallelism requested. options.parallel never splits the cache
	// key, so these race their sequential twins above for one shared
	// cache entry — exercising key neutrality under load.
	for seed := int64(0); seed < 2; seed++ {
		p := analyzeReq(randgen.Mixed, seed, randgen.Config{})
		p.name = "par-" + p.name
		p.body.Options.Parallel = 4
		ps = append(ps, p)
	}
	// Batch probes: several programs per request, items running
	// concurrently through the worker pool; the partial variant carries
	// known-bad items whose failure must stay contained to their slots.
	batchItems := []batchProbeItem{
		{Kind: service.KindGroundness, Options: service.Options{Parallel: 2}, Source: ":- table anc/2.\n" +
			"par(a,b). par(b,c). par(c,d).\nanc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y)."},
		{Kind: service.KindQuery, Source: "d(1). d(2). d(3).", Options: service.Options{Goal: "d(X)"}},
		{Kind: service.KindLint, Source: "ap([], L, L).\nap([H|T], L, [H|R]) :- ap(T, L, R)."},
	}
	ps = append(ps,
		probe{name: "batch-mixed", path: "/v1/batch", class: "batch",
			batch: batchItems, batchParallel: 2},
		probe{name: "batch-partial", path: "/v1/batch", class: "batch",
			batch: append(batchItems[:2:2],
				batchProbeItem{Kind: service.KindGroundness, Source: "p(", expectErr: true},
				batchProbeItem{Kind: service.Kind("nosuch"), Source: "a.", expectErr: true})},
	)
	return ps
}

// auditBatch validates a /v1/batch 200: every item answered in its
// slot, known-bad items failed, and good items either succeeded or were
// shed by the bounded queue — the only sentinel item failure under soak
// concurrency (a request holds the restart read lock for its whole
// round trip, so items never race a shutdown).
func auditBatch(p probe, body []byte) string {
	var br struct {
		Items   int `json:"items"`
		Results []struct {
			Index int    `json:"index"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		return fmt.Sprintf("undecodable batch body: %v", err)
	}
	if br.Items != len(p.batch) || len(br.Results) != len(p.batch) {
		return fmt.Sprintf("batch answered %d/%d items", len(br.Results), len(p.batch))
	}
	for i, r := range br.Results {
		if r.Index != i {
			return fmt.Sprintf("item %d answered out of order (index %d)", i, r.Index)
		}
		if p.batch[i].expectErr {
			if r.Error == "" {
				return fmt.Sprintf("item %d (known-bad) succeeded", i)
			}
			continue
		}
		if r.Error != "" && !strings.Contains(r.Error, "queue full") {
			return fmt.Sprintf("item %d: non-sentinel error %q", i, r.Error)
		}
	}
	return ""
}

// daemon wraps one service + HTTP server generation. Requests hold the
// read lock for their whole round trip; restart takes the write lock,
// so a kill never yields client-visible connection errors — exactly the
// behavior of a drain-then-exec rolling restart.
type daemon struct {
	svcCfg service.Config

	mu  sync.RWMutex
	svc *service.Service
	srv *httptest.Server
}

func (d *daemon) start() {
	d.svc = service.New(d.svcCfg)
	d.srv = httptest.NewServer(service.RequestIDMiddleware(d.svc.Handler()))
}

func (d *daemon) restart() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.srv.Close()
	d.svc.Close() //nolint:errcheck // fresh generation follows regardless
	d.start()
}

func (d *daemon) stop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.srv.Close()
	d.svc.Close() //nolint:errcheck
}

// outcome is one request's classified result.
type outcome struct {
	status     int
	err        error // transport error (nil on any HTTP response)
	retryAfter string
	body       []byte
	dur        time.Duration
	stored     bool // 200 served from the disk store
	cached     bool
	deduped    bool
	streamDone bool // streamed 200 reached its trailer
}

// do issues one probe. When cancelAfter > 0 the request context is
// canceled after that delay — the injected client hangup.
func (d *daemon) do(p probe, client string, cancelAfter time.Duration) outcome {
	d.mu.RLock()
	defer d.mu.RUnlock()

	var buf []byte
	var err error
	if len(p.batch) > 0 {
		buf, err = json.Marshal(struct {
			Items    []batchProbeItem `json:"items"`
			Parallel int              `json:"parallel,omitempty"`
		}{p.batch, p.batchParallel})
	} else {
		buf, err = json.Marshal(p.body)
	}
	if err != nil {
		return outcome{err: err}
	}
	ctx := context.Background()
	if cancelAfter > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cancelAfter)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, "POST", d.srv.URL+p.path, bytes.NewReader(buf))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ClientIDHeader, client)

	t0 := time.Now()
	resp, err := d.srv.Client().Do(req)
	if err != nil {
		return outcome{err: err, dur: time.Since(t0)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	o := outcome{
		status:     resp.StatusCode,
		err:        err,
		retryAfter: resp.Header.Get("Retry-After"),
		body:       data,
		dur:        time.Since(t0),
	}
	if o.status == http.StatusOK && o.err == nil {
		if p.stream {
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			var header struct {
				Cached bool `json:"cached"`
				Stored bool `json:"stored"`
			}
			var trailer struct {
				Done bool `json:"done"`
			}
			if len(lines) >= 2 &&
				json.Unmarshal([]byte(lines[0]), &header) == nil &&
				json.Unmarshal([]byte(lines[len(lines)-1]), &trailer) == nil {
				o.cached, o.stored, o.streamDone = header.Cached, header.Stored, trailer.Done
			}
		} else {
			var r service.Response
			if err := json.Unmarshal(data, &r); err != nil {
				o.err = fmt.Errorf("undecodable 200 body: %w", err)
			} else {
				o.cached, o.stored, o.deduped = r.Cached, r.Stored, r.Deduped
			}
		}
	}
	return o
}

// stats fetches the live /v1/stats counters.
func (d *daemon) stats() (service.Stats, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	resp, err := d.srv.Client().Get(d.srv.URL + "/v1/stats")
	if err != nil {
		return service.Stats{}, err
	}
	defer resp.Body.Close()
	var st struct{ service.Stats }
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Stats{}, err
	}
	return st.Stats, nil
}

// Run executes the soak: the mixed phase under restart and cancel
// injection, the admission shed probe, and the warm-restart audit.
// It returns the classified Result; Result.Err folds in the pass/fail
// criteria so the caller separates "the run completed" from "the run
// passed".
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreDir == "" {
		return nil, errors.New("soak: Config.StoreDir is required")
	}
	probes := buildProbes()
	d := &daemon{svcCfg: service.Config{
		Workers:   2 * runtime.GOMAXPROCS(0),
		QueueSize: 4 * cfg.Concurrency,
		CacheSize: 64, // smaller than the probe corpus: LRU evictions send reads to the disk store
		StoreDir:  cfg.StoreDir,
		RateLimit: 100, RateBurst: 100, // generous for the workers; the hammer probe overruns it
	}}
	d.start()
	defer d.stop()

	res := &Result{Requests: cfg.Requests}
	var (
		mu         sync.Mutex
		durations  []time.Duration
		succeeded  = make([]atomic.Bool, len(probes))
		issued     atomic.Int64 // next request number (1-based)
		completed  atomic.Int64
		ok, limit  atomic.Int64
		deadline   atomic.Int64
		shedQ      atomic.Int64
		shedR      atomic.Int64
		canceled   atomic.Int64
		stored     atomic.Int64
		cachedN    atomic.Int64
		deduped    atomic.Int64
		unexpected = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			if len(res.Unexpected) < 20 {
				res.Unexpected = append(res.Unexpected, fmt.Sprintf(format, args...))
			}
		}
	)

	classify := func(p probe, o outcome, injected bool) {
		if o.err != nil {
			if injected {
				canceled.Add(1)
				return
			}
			unexpected("%s: transport error: %v", p.name, o.err)
			return
		}
		switch o.status {
		case http.StatusOK:
			ok.Add(1)
			if p.class == "batch" {
				// An injected cancel can truncate the item results the
				// server managed to flush; audit only clean runs.
				if !injected {
					if msg := auditBatch(p, o.body); msg != "" {
						unexpected("%s: %s", p.name, msg)
						return
					}
				}
				mu.Lock()
				durations = append(durations, o.dur)
				mu.Unlock()
				return
			}
			if p.stream && !o.streamDone && !injected {
				unexpected("%s: stream ended without its done trailer", p.name)
				return
			}
			if o.stored {
				stored.Add(1)
			}
			if o.cached {
				cachedN.Add(1)
			}
			if o.deduped {
				deduped.Add(1)
			}
			mu.Lock()
			durations = append(durations, o.dur)
			mu.Unlock()
		case http.StatusTooManyRequests:
			if secs, err := strconv.Atoi(o.retryAfter); err != nil || secs < 1 {
				unexpected("%s: 429 with Retry-After %q", p.name, o.retryAfter)
				return
			}
			if strings.Contains(string(o.body), "queue full") {
				shedQ.Add(1)
			} else if strings.Contains(string(o.body), "rate limited") {
				shedR.Add(1)
			} else {
				unexpected("%s: 429 of unknown class: %s", p.name, o.body)
			}
		case http.StatusUnprocessableEntity:
			if p.class != "limit" {
				unexpected("%s: unexpected 422: %s", p.name, o.body)
				return
			}
			limit.Add(1)
		case http.StatusGatewayTimeout:
			if p.class != "deadline" {
				unexpected("%s: unexpected 504: %s", p.name, o.body)
				return
			}
			deadline.Add(1)
		case 499:
			// The injected cancel reached the server before the client
			// noticed; same sentinel, other side of the race.
			if !injected {
				unexpected("%s: 499 without an injected cancel", p.name)
				return
			}
			canceled.Add(1)
		default:
			unexpected("%s: status %d: %s", p.name, o.status, o.body)
		}
	}

	// Restart controller: kill/restart the daemon at evenly spaced
	// points of the mixed phase.
	restartsDone := make(chan struct{})
	go func() {
		defer close(restartsDone)
		for i := 1; i <= cfg.Restarts; i++ {
			threshold := int64(cfg.Requests * i / (cfg.Restarts + 1))
			for completed.Load() < threshold {
				time.Sleep(2 * time.Millisecond)
			}
			cfg.Logf("soak: restart %d/%d after %d requests", i, cfg.Restarts, completed.Load())
			d.restart()
			res.Restarts++
		}
	}()

	cfg.Logf("soak: mixed phase: %d requests, %d clients, %d probes, %d restarts",
		cfg.Requests, cfg.Concurrency, len(probes), cfg.Restarts)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			client := fmt.Sprintf("soak-%d", w)
			for {
				n := issued.Add(1)
				if n > int64(cfg.Requests) {
					return
				}
				idx := rng.Intn(len(probes))
				p := probes[idx]
				var cancelAfter time.Duration
				injected := cfg.CancelEvery > 0 && n%int64(cfg.CancelEvery) == 0
				if injected {
					cancelAfter = time.Duration(1+rng.Intn(10)) * time.Millisecond
				}
				o := d.do(p, client, cancelAfter)
				if o.err == nil && o.status == http.StatusOK {
					succeeded[idx].Store(true)
				}
				classify(p, o, injected)
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	<-restartsDone

	// Admission shed probe: one client bursts past its bucket faster
	// than the refill rate until the overflow sheds as 429 +
	// Retry-After (validated by classify). Cached lint responses are
	// sub-millisecond, so the burst outruns the bucket quickly; the
	// iteration cap only guards against a pathological environment.
	cheap := probe{name: "hammer", path: "/v1/lint", class: "ok",
		body: apiBody{Source: "h(a)."}}
	hammerShed, hammerSent := 0, 0
	for i := 0; i < 5000 && hammerShed < 4; i++ {
		o := d.do(cheap, "hammer", 0)
		hammerSent++
		if o.err != nil {
			unexpected("hammer: transport error: %v", o.err)
			break
		}
		if o.status == http.StatusTooManyRequests {
			classify(cheap, o, false)
			hammerShed++
		}
	}
	if hammerShed == 0 {
		unexpected("hammer: burst of %d never shed", hammerSent)
	}
	cfg.Logf("soak: hammer probe shed %d of %d burst requests", hammerShed, hammerSent)

	// Warm-restart audit: bounce the daemon once more, then replay each
	// previously succeeded unique request; the disk store must answer.
	d.restart()
	res.Restarts++
	seenKeys := map[string]bool{}
	for idx, p := range probes {
		if !p.warm || !succeeded[idx].Load() {
			continue
		}
		// Distinct seeds occasionally emit byte-identical programs; the
		// second replay of a shared key is a memory hit (the first one
		// promoted it from disk), so audit each key once.
		if k := p.key(); seenKeys[k] {
			continue
		} else {
			seenKeys[k] = true
		}
		warm := p
		warm.body.Options.Stream = false // same cache key, simpler audit
		warm.stream = false
		o := d.do(warm, "warm-audit", 0)
		if o.err != nil || o.status != http.StatusOK {
			unexpected("warm %s: status %d err %v", p.name, o.status, o.err)
			continue
		}
		res.WarmUnique++
		if o.stored {
			res.WarmStored++
		}
	}
	cfg.Logf("soak: warm audit: %d/%d served from the disk store", res.WarmStored, res.WarmUnique)

	st, err := d.stats()
	if err != nil {
		unexpected("final stats fetch: %v", err)
	}
	res.Stats = st
	if st.Store == nil {
		unexpected("daemon ran storeless (store stats absent)")
	} else if res.WarmUnique > 0 && st.Store.Hits < uint64(res.WarmStored) {
		unexpected("store hit counter %d below audited hits %d", st.Store.Hits, res.WarmStored)
	}

	res.OK = int(ok.Load())
	res.Limit = int(limit.Load())
	res.Deadline = int(deadline.Load())
	res.ShedQueue = int(shedQ.Load())
	res.ShedRate = int(shedR.Load())
	res.Canceled = int(canceled.Load())
	res.Stored = int(stored.Load())
	res.Cached = int(cachedN.Load())
	res.Deduped = int(deduped.Load())
	res.P99 = percentile(durations, 0.99)
	return res, nil
}

// percentile returns the pth percentile of ds (0 when empty).
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(p * float64(len(ds)-1))
	return ds[i]
}
