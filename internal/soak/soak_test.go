package soak

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"xlp/internal/testutil"
)

// envInt reads an integer knob from the environment, else returns def.
func envInt(t *testing.T, name string, def int) int {
	t.Helper()
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("bad %s=%q: %v", name, v, err)
	}
	return n
}

// TestSoakSmoke is the race-clean soak gate (`make soak-smoke`): >=2k
// mixed requests at >=8x GOMAXPROCS concurrency with kill/restart and
// cancellation injection over one disk store, asserting zero
// non-sentinel outcomes, Retry-After on every shed, a >=90% warm store
// hit ratio after the final restart, zero goroutine leaks, and bounded
// heap growth. It runs only under XLP_SOAK=1 so plain `go test ./...`
// stays fast; XLP_SOAK_REQUESTS / XLP_SOAK_CONCURRENCY /
// XLP_SOAK_RESTARTS scale it up for the long-form `make soak`.
func TestSoakSmoke(t *testing.T) {
	if os.Getenv("XLP_SOAK") == "" {
		t.Skip("set XLP_SOAK=1 (make soak-smoke) to run the soak gate")
	}
	before := testutil.Goroutines()
	var m0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	cfg := Config{
		Requests:    envInt(t, "XLP_SOAK_REQUESTS", 2000),
		Concurrency: envInt(t, "XLP_SOAK_CONCURRENCY", 8*runtime.GOMAXPROCS(0)),
		Restarts:    envInt(t, "XLP_SOAK_RESTARTS", 3),
		Seed:        20260809,
		StoreDir:    t.TempDir(),
		Logf:        t.Logf,
	}
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("soak did not complete: %v", err)
	}
	t.Logf("soak: %d requests in %v: ok=%d (cached=%d stored=%d deduped=%d) limit=%d deadline=%d shed=%d/%d canceled=%d restarts=%d p99=%v warm=%d/%d",
		res.Requests, time.Since(start).Round(time.Millisecond),
		res.OK, res.Cached, res.Stored, res.Deduped,
		res.Limit, res.Deadline, res.ShedQueue, res.ShedRate, res.Canceled,
		res.Restarts, res.P99, res.WarmStored, res.WarmUnique)
	for _, u := range res.Unexpected {
		t.Errorf("non-sentinel outcome: %s", u)
	}
	if err := res.Err(cfg); err != nil {
		t.Error(err)
	}
	if res.OK == 0 || res.Limit == 0 || res.Deadline == 0 {
		t.Errorf("probe classes missing coverage: ok=%d limit=%d deadline=%d",
			res.OK, res.Limit, res.Deadline)
	}
	if res.Restarts < cfg.Restarts+1 {
		t.Errorf("restart injection ran %d times, want >= %d", res.Restarts, cfg.Restarts+1)
	}

	// The run tore every daemon generation down: nothing may linger.
	testutil.AssertNoLeaks(t, before)

	// Bounded heap growth: after collection, the live heap must not
	// have grown by more than a fixed budget over the whole soak (a
	// leak proportional to request count would blow far past this).
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	const heapBudget = 64 << 20
	if m1.HeapAlloc > m0.HeapAlloc && m1.HeapAlloc-m0.HeapAlloc > heapBudget {
		t.Errorf("live heap grew %d MiB over the soak (budget %d MiB)",
			(m1.HeapAlloc-m0.HeapAlloc)>>20, heapBudget>>20)
	}
}
