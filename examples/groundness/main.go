// Groundness analysis of a logic program over the Prop domain — the
// paper's §3.1 analysis, on its own worked example (append, Figure 2)
// and on quicksort, goal-directed from a ground call.
//
//	go run ./examples/groundness
package main

import (
	"fmt"
	"log"

	"xlp"
)

const program = `
	qsort([], []).
	qsort([X|Xs], S) :-
		partition(Xs, X, L, G),
		qsort(L, SL),
		qsort(G, SG),
		append(SL, [X|SG], S).

	partition([], _, [], []).
	partition([Y|Ys], X, [Y|L], G) :- Y =< X, partition(Ys, X, L, G).
	partition([Y|Ys], X, L, [Y|G]) :- Y > X, partition(Ys, X, L, G).

	append([], Ys, Ys).
	append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

	main :- qsort([3, 1, 2], S), append(S, S, _).
`

func main() {
	// Open-call analysis: output groundness of every predicate.
	a, err := xlp.AnalyzeGroundness(program, xlp.GroundnessOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("output groundness (success formulas over argument positions):")
	for _, r := range a.Sorted() {
		fmt.Printf("  %-14s %s\n", r.Indicator, r.FormatSuccess())
	}

	// Goal-directed analysis from main/0: the tabled engine's call
	// tables give the input groundness of every reachable call for free.
	g, err := xlp.AnalyzeGroundness(program, xlp.GroundnessOptions{
		Entry: []string{"main"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngoal-directed from main/0 (g = ground at call, ng = non-ground, ? = unknown):")
	for _, r := range g.Sorted() {
		if !r.Reachable {
			continue
		}
		fmt.Printf("  %-14s", r.Indicator)
		for _, c := range r.Calls {
			fmt.Printf(" %s", c)
		}
		fmt.Println()
	}
	fmt.Printf("\nphases: preprocess %v, analysis %v, collection %v; tables %d bytes\n",
		a.PreprocTime, a.AnalysisTime, a.CollectionTime, a.TableBytes)
}
