// Quickstart: the tabled logic-programming engine as a library.
//
// Left-recursive transitive closure loops forever under ordinary Prolog
// resolution; with tabling it terminates and each answer is derived once
// — the completeness the paper's whole approach rests on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xlp"
)

func main() {
	m := xlp.NewMachine()

	// A cyclic flight network and a left-recursive reachability
	// predicate. The ':- table' directive is all it takes.
	err := m.Consult(`
		:- table reach/2.

		flight(vie, jfk).  flight(jfk, sfo).  flight(sfo, ord).
		flight(ord, vie).  flight(jfk, lhr).  flight(lhr, vie).

		reach(X, Y) :- reach(X, Z), flight(Z, Y).
		reach(X, Y) :- flight(X, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	sols, err := m.Query("reach(vie, W)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("airports reachable from VIE:")
	for _, s := range sols {
		fmt.Printf("  %s\n", s)
	}

	// The call tables record every subgoal encountered — the paper's
	// "input modes for free" observation (§3.1).
	stats := m.Stats()
	fmt.Printf("\n%d tabled subgoals, %d answers, %d bytes of tables\n",
		stats.Subgoals, stats.Answers, m.TableSpace())
}
