// Demand interprocedural dataflow analysis as logic-database queries —
// the paper's §7 direction (after Reps): possibly-uninitialized-variable
// queries over control-flow facts, answered goal-directedly by the
// tabled engine and compared with bottom-up evaluation (full model and
// Magic sets).
//
//	go run ./examples/dataflow
package main

import (
	"fmt"
	"log"

	"xlp/internal/dataflow"
)

func main() {
	cfg := dataflow.Config{Procs: 8, NodesPerProc: 20, Vars: 5, Seed: 2026}
	src := dataflow.Generate(cfg)
	query := dataflow.QueryProc(2)
	fmt.Printf("synthetic CFG: %d procedures x %d nodes x %d variables\n",
		cfg.Procs, cfg.NodesPerProc, cfg.Vars)
	fmt.Printf("demand query: %s\n\n", query)

	tab, err := dataflow.RunTabled(src, query)
	if err != nil {
		log.Fatal(err)
	}
	full, err := dataflow.RunBottomUpFull(src, query)
	if err != nil {
		log.Fatal(err)
	}
	magic, err := dataflow.RunBottomUpMagic(src, query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %10s %10s\n", "evaluation", "time", "tuples")
	fmt.Printf("%-22s %10v %10d\n", "tabled (goal-directed)", tab.Duration, tab.Facts)
	fmt.Printf("%-22s %10v %10d\n", "bottom-up (full model)", full.Duration, full.Facts)
	fmt.Printf("%-22s %10v %10d\n", "bottom-up + magic sets", magic.Duration, magic.Facts)
	fmt.Printf("\nall three agree on %d possibly-uninitialized uses\n", tab.Answers)
	fmt.Println("\nthe tabled engine is goal-directed without any program " +
		"transformation — the call tables play the role of the magic sets")
}
