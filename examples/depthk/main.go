// Depth-k groundness analysis (the paper's §5): a non-enumerative
// abstract domain of depth-bounded terms with the γ symbol standing for
// "any ground term", computed with meta-level abstract unification on
// the same tabled engine.
//
//	go run ./examples/depthk
package main

import (
	"fmt"
	"log"

	"xlp"
)

const program = `
	% a tiny interpreter for arithmetic syntax trees
	eval(num(N), N).
	eval(plus(A, B), V) :- eval(A, VA), eval(B, VB), V is VA + VB.
	eval(times(A, B), V) :- eval(A, VA), eval(B, VB), V is VA * VB.

	% symbolic differentiation builds unboundedly deep terms — the
	% depth cut is what keeps the analysis finite
	d(x, num(1)).
	d(num(_), num(0)).
	d(plus(A, B), plus(DA, DB)) :- d(A, DA), d(B, DB).
	d(times(A, B), plus(times(A, DB), times(DA, B))) :- d(A, DA), d(B, DB).
`

func main() {
	for _, k := range []int{1, 2} {
		a, err := xlp.AnalyzeDepthK(program, xlp.DepthKOptions{K: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k = %d (total %v, tables %d bytes):\n", k, a.Total(), a.TableBytes)
		for _, ind := range []string{"eval/2", "d/2"} {
			r := a.Results[ind]
			fmt.Printf("  %-8s ground: %v, %d abstract success patterns\n",
				ind, r.GroundArgs, len(r.Answers))
			for i, ans := range r.Answers {
				if i == 3 {
					fmt.Printf("           ... (%d more)\n", len(r.Answers)-3)
					break
				}
				fmt.Printf("           %s\n", ans)
			}
		}
		fmt.Println()
	}
}
