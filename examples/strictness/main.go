// Strictness analysis of a lazy functional program by demand
// propagation — the paper's §3.2 analysis on its Figure 4 worked example
// plus a small stream-processing program. A compiler would use the
// results to evaluate strict arguments eagerly (call-by-value) without
// changing termination behavior.
//
//	go run ./examples/strictness
package main

import (
	"fmt"
	"log"

	"xlp"
)

const program = `
	% the paper's worked example (Figure 4)
	ap(nil, Ys) = Ys.
	ap(cons(X, Xs), Ys) = cons(X, ap(Xs, Ys)).

	% head retrieval is head-strict only
	hd(cons(X, Xs)) = X.

	% summing forces the whole spine and every element
	sum(nil) = 0.
	sum(cons(X, Xs)) = X + sum(Xs).

	% take is lazy in the stream beyond its prefix
	take(N, Xs) = if(N < 1, nil, takene(N, Xs)).
	takene(N, nil) = nil.
	takene(N, cons(X, Xs)) = cons(X, take(N - 1, Xs)).

	% an infinite stream: only usable because take/sum demand finitely
	nats(N) = cons(N, nats(N + 1)).

	main(K) = sum(take(K, nats(0))).
`

func main() {
	a, err := xlp.AnalyzeStrictness(program, xlp.StrictnessOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("demands guaranteed on each argument (n < d < e):")
	fmt.Println("  under e: result demanded in full;  under d: to head-normal form")
	for _, r := range a.Sorted() {
		fmt.Printf("  %s\n", r)
	}

	fmt.Println("\nstrict arguments (safe to evaluate eagerly):")
	for _, r := range a.Sorted() {
		for i := 0; i < r.Arity; i++ {
			if r.Strict(i) {
				fmt.Printf("  %s argument %d\n", r.Indicator, i+1)
			}
		}
	}
	fmt.Printf("\n%.0f source lines/second; tables %d bytes\n",
		a.LinesPerSecond(), a.TableBytes)
}
