// Package xlp is a tabled logic programming system and program-analysis
// toolkit in Go — a reproduction of Dawson, Ramakrishnan & Warren,
// "Practical Program Analysis Using General Purpose Logic Programming
// Systems — A Case Study" (PLDI 1996).
//
// The package exposes four things:
//
//   - a tabled logic-programming engine in the spirit of XSB (variant
//     tabling, SLD resolution, dynamic and compiled loading): NewMachine;
//   - groundness analysis of logic programs over the Prop domain
//     (the paper's §3.1): AnalyzeGroundness, plus the special-purpose
//     and BDD-based comparators AnalyzeGroundnessGAIA and
//     AnalyzeGroundnessBDD;
//   - strictness analysis of lazy functional programs by demand
//     propagation (§3.2): AnalyzeStrictness;
//   - groundness analysis with term-depth abstraction (§5):
//     AnalyzeDepthK;
//   - a static linter over the object programs themselves (call graph,
//     SCC condensation, undefined/unreachable predicates, singleton
//     variables, untabled left recursion): Lint and LintFL. Its call
//     graph also drives reachability slicing — set Slice with Entry in
//     the analysis options to analyze only the queried cone.
//
// A bottom-up deductive engine with Magic sets (the §7 comparison
// substrate) is available as BottomUp and MagicQuery.
//
// All analysis functions take program source text; logic programs use
// Edinburgh Prolog syntax, functional programs the equation syntax of
// internal/fl (Prolog term notation: `ap(cons(X,Xs),Ys) = cons(X,
// ap(Xs,Ys)).`).
package xlp

import (
	"context"

	"xlp/internal/bddprop"
	"xlp/internal/bottomup"
	"xlp/internal/depthk"
	"xlp/internal/engine"
	"xlp/internal/gaia"
	"xlp/internal/lint"
	"xlp/internal/obs"
	"xlp/internal/prop"
	"xlp/internal/strict"
	"xlp/internal/term"
)

// Engine types.
type (
	// Machine is the tabled logic-programming engine.
	Machine = engine.Machine
	// LoadMode selects dynamic (assert-style) or compiled (indexed)
	// clause loading.
	LoadMode = engine.LoadMode
	// Limits bound engine resources.
	Limits = engine.Limits
	// Term is the term representation shared across the system.
	Term = term.Term
)

// Load modes.
const (
	LoadDynamic  = engine.LoadDynamic
	LoadCompiled = engine.LoadCompiled
)

// NewMachine returns an empty tabled engine. Consult Prolog text with
// m.Consult, mark predicates tabled with m.Table (or ':- table p/n.'
// directives in the source), and run queries with m.Query.
func NewMachine() *Machine { return engine.New() }

// Typed evaluation errors. Every analysis and query error caused by a
// resource limit or cancellation wraps one of these; select with
// errors.Is.
var (
	ErrDepthLimit   = engine.ErrDepthLimit
	ErrAnswerLimit  = engine.ErrAnswerLimit
	ErrSubgoalLimit = engine.ErrSubgoalLimit
	ErrCanceled     = engine.ErrCanceled
	ErrDeadline     = engine.ErrDeadline
)

// Groundness analysis (Prop domain, §3.1).
type (
	// GroundnessOptions configure AnalyzeGroundness.
	GroundnessOptions = prop.Options
	// GroundnessAnalysis is the result of AnalyzeGroundness, with the
	// paper's phase breakdown (Table 1 columns).
	GroundnessAnalysis = prop.Analysis
	// GroundnessResult is the per-predicate result.
	GroundnessResult = prop.PredResult
)

// AnalyzeGroundness runs Prop-domain groundness analysis of a Prolog
// program on the tabled engine.
func AnalyzeGroundness(src string, opts GroundnessOptions) (*GroundnessAnalysis, error) {
	return prop.Analyze(src, opts)
}

// AnalyzeGroundnessCtx is AnalyzeGroundness under a context: once ctx
// ends the run fails with ErrCanceled or ErrDeadline.
func AnalyzeGroundnessCtx(ctx context.Context, src string, opts GroundnessOptions) (*GroundnessAnalysis, error) {
	opts.Ctx = ctx
	return prop.Analyze(src, opts)
}

// AnalyzeGroundnessGAIA runs the special-purpose abstract interpreter
// (the paper's Table 2 comparator). Results are identical to
// AnalyzeGroundness; only the implementation differs.
func AnalyzeGroundnessGAIA(src string) (*gaia.Analysis, error) {
	return gaia.Analyze(src)
}

// AnalyzeGroundnessGAIACtx is AnalyzeGroundnessGAIA under a context.
func AnalyzeGroundnessGAIACtx(ctx context.Context, src string) (*gaia.Analysis, error) {
	return gaia.AnalyzeCtx(ctx, src)
}

// AnalyzeGroundnessBDD runs the BDD-based bottom-up analyzer (the §4
// representation comparison).
func AnalyzeGroundnessBDD(src string) (*bddprop.Analysis, error) {
	return bddprop.Analyze(src)
}

// AnalyzeGroundnessBDDCtx is AnalyzeGroundnessBDD under a context.
func AnalyzeGroundnessBDDCtx(ctx context.Context, src string) (*bddprop.Analysis, error) {
	return bddprop.AnalyzeCtx(ctx, src)
}

// Strictness analysis (demand propagation, §3.2).
type (
	// StrictnessOptions configure AnalyzeStrictness.
	StrictnessOptions = strict.Options
	// StrictnessAnalysis is the result (Table 3 columns).
	StrictnessAnalysis = strict.Analysis
	// StrictnessResult is the per-function result.
	StrictnessResult = strict.FuncResult
	// Demand is a point of the demand lattice n < d < e.
	Demand = strict.Demand
)

// Demand lattice points.
const (
	DemandNone = strict.N
	DemandHead = strict.D
	DemandFull = strict.E
)

// AnalyzeStrictness runs demand-propagation strictness analysis of a
// functional program on the tabled engine.
func AnalyzeStrictness(src string, opts StrictnessOptions) (*StrictnessAnalysis, error) {
	return strict.Analyze(src, opts)
}

// AnalyzeStrictnessCtx is AnalyzeStrictness under a context: once ctx
// ends the run fails with ErrCanceled or ErrDeadline.
func AnalyzeStrictnessCtx(ctx context.Context, src string, opts StrictnessOptions) (*StrictnessAnalysis, error) {
	opts.Ctx = ctx
	return strict.Analyze(src, opts)
}

// Depth-k groundness analysis (§5).
type (
	// DepthKOptions configure AnalyzeDepthK.
	DepthKOptions = depthk.Options
	// DepthKAnalysis is the result (Table 4 columns).
	DepthKAnalysis = depthk.Analysis
)

// AnalyzeDepthK runs groundness analysis with term-depth abstraction.
func AnalyzeDepthK(src string, opts DepthKOptions) (*DepthKAnalysis, error) {
	return depthk.Analyze(src, opts)
}

// AnalyzeDepthKCtx is AnalyzeDepthK under a context: once ctx ends the
// run fails with ErrCanceled or ErrDeadline.
func AnalyzeDepthKCtx(ctx context.Context, src string, opts DepthKOptions) (*DepthKAnalysis, error) {
	opts.Ctx = ctx
	return depthk.Analyze(src, opts)
}

// Object-program linting (static, no evaluation).
type (
	// LintOptions configure Lint and LintFL.
	LintOptions = lint.Options
	// LintResult is a lint run: sorted diagnostics plus the program's
	// call graph with its SCC condensation.
	LintResult = lint.Result
	// LintDiagnostic is one finding with severity, code, and position.
	LintDiagnostic = lint.Diagnostic
	// CallGraph is the predicate-level call graph a lint run builds.
	CallGraph = lint.Graph
)

// Diagnostic severities.
const (
	LintWarning = lint.SevWarning
	LintError   = lint.SevError
)

// Lint statically checks a Prolog object program: undefined predicates
// (with call sites and near-miss hints), singleton variables,
// predicates unreachable from the entry points, and recursive
// predicates that diverge under SLD unless tabled.
func Lint(src string, opts LintOptions) *LintResult {
	return lint.Prolog(src, opts)
}

// LintFL statically checks a functional program in the fl equation
// syntax: unbound right-hand-side variables, singleton pattern
// variables, and functions unreachable from the entry points.
func LintFL(src string, opts LintOptions) *LintResult {
	return lint.FL(src, opts)
}

// Bottom-up evaluation (the §7 comparison substrate).
type (
	// BottomUpSystem is the semi-naive deductive engine.
	BottomUpSystem = bottomup.System
)

// BottomUp returns an empty bottom-up system.
func BottomUp() *BottomUpSystem { return bottomup.New() }

// Observability. A Timeline threads through analysis options to record
// the parse/transform/load/solve/collect phase breakdown; a Trace
// installed as the Tracer option records engine events (subgoal created,
// answer added/duplicate, producer runs, completion) into a bounded ring
// with per-predicate counters, exportable as JSONL or Chrome
// trace_event. Tracing is opt-in: a nil tracer costs one predictable
// branch per hook site and allocates nothing.
type (
	// Timeline records contiguous analysis phases; nil is a valid no-op.
	Timeline = obs.Timeline
	// Trace is a bounded engine event ring with per-predicate counters.
	Trace = obs.Trace
	// EngineTracer receives engine evaluation events.
	EngineTracer = obs.EngineTracer
	// TraceEvent is one recorded engine event.
	TraceEvent = obs.Event
	// PredCounters are per-predicate table totals ("top tables").
	PredCounters = obs.PredCounters
	// BuildInfo identifies the running binary.
	BuildInfo = obs.Info
)

// NewTimeline returns an empty phase timeline.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// NewTrace returns an engine event trace with the given ring capacity
// (0 uses the default of obs.DefaultTraceCap events).
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// Build returns the binary's build information; a non-empty override
// (an -ldflags -X version stamp) wins over the module version.
func Build(override string) BuildInfo { return obs.Build(override) }

// Answer provenance. With Provenance enabled on the analyzer options
// (or Machine.Provenance set before solving), the engine records a
// justification for every distinct tabled answer: the clause that first
// produced it and the tabled premise answers that derivation consumed.
// Derivation is the renderable DAG built from those records — the
// `xlp why` CLI and the server's POST /v1/explain return it as text,
// JSON, or Graphviz DOT.
type (
	// AnswerRef identifies one tabled answer by table coordinates
	// (subgoal creation index, answer insertion index).
	AnswerRef = engine.AnswerRef
	// Just is the recorded justification of one tabled answer.
	Just = engine.Just
	// Derivation is a justification DAG over recorded answers, with
	// WriteText, WriteJSON, and WriteDOT renderers.
	Derivation = obs.Derivation
	// DerivNode is one answer in a Derivation.
	DerivNode = obs.DerivNode
)
